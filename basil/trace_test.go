package basil_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// tracesDoc mirrors the /traces JSON schema (internal/trace/http.go).
type tracesDoc struct {
	Traces []struct {
		TraceID string    `json:"trace_id"`
		Status  string    `json:"status"`
		Forced  string    `json:"forced"`
		DurUs   int64     `json:"dur_us"`
		Root    traceSpan `json:"root"`
	} `json:"traces"`
}

type traceSpan struct {
	Name     string      `json:"name"`
	Node     string      `json:"node"`
	Attrs    string      `json:"attrs"`
	Children []traceSpan `json:"children"`
}

// walkSpans visits every span of a tree, root included.
func walkSpans(s traceSpan, visit func(traceSpan)) {
	visit(s)
	for _, c := range s.Children {
		walkSpans(c, visit)
	}
}

// TestTraceRecoveryForcedCaptureE2E proves the forced-capture promise over
// a real TCP shard: with the sampling rate at zero, a plain committed
// transaction leaves no trace, while a transaction that runs recovery
// (finishing an equivocated transaction) is captured end to end — its
// span tree, served over the admin HTTP endpoints, includes replica-side
// stages whose trace context traveled inside the framed wire protocol.
func TestTraceRecoveryForcedCaptureE2E(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		TCPLoopback:         true,
		Tracing:             true,
		TraceSample:         0, // tail-only: nothing but forced captures
		AllowUnvalidatedST2: true,
		PhaseTimeout:        40 * time.Millisecond,
	})
	defer cl.Close()
	cl.Load("x", enc(5))

	recs := make([]*trace.FlightRecorder, 0, cl.ReplicaCount())
	for i := 0; i < cl.ReplicaCount(); i++ {
		recs = append(recs, cl.Replica(0, i).FlightRecorder())
	}
	admin, err := metrics.StartAdmin("127.0.0.1:0", metrics.NewRegistry(), cl.Replica(0, 0).Health,
		metrics.Route{Pattern: "/traces", Handler: trace.TracesHandler(cl.Tracer())},
		metrics.Route{Pattern: "/traces/slow", Handler: trace.SlowHandler(cl.Tracer())},
		metrics.Route{Pattern: "/debug/flightrec", Handler: trace.FlightHandler(recs...)},
	)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr()

	getJSON := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d %s", path, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, body)
		}
	}

	// A plain committed transaction at sample rate 0 must not be traced.
	c0 := cl.NewClient()
	if err := c0.Run(func(tx *basil.Txn) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		tx.Write("x", enc(dec(v)+1))
		return nil
	}); err != nil {
		t.Fatalf("warmup commit: %v", err)
	}
	var before tracesDoc
	getJSON("/traces", &before)
	if len(before.Traces) != 0 {
		t.Fatalf("unsampled transaction appeared in /traces: %+v", before.Traces)
	}

	// A Byzantine client equivocates its ST2 decision; a correct client
	// finishes the transaction via recovery — a tail event that must be
	// captured regardless of the sampling rate.
	byz := cl.NewClient()
	btx := byz.Begin()
	v, _ := btx.Read("x")
	btx.Write("x", enc(dec(v)+50))
	if ok := byz.Inner().CommitFaulty(btx.Inner(), client.FaultEquivForced); !ok {
		t.Fatal("forced equivocation did not run")
	}
	meta := btx.Inner().MetaSnapshot()

	c := cl.NewClient()
	htx := c.Begin() // anchors the trace the recovery is charged to
	if _, _, err := c.Inner().FinishTransaction(meta); err != nil {
		t.Fatalf("recovery did not terminate: %v", err)
	}
	if err := htx.Commit(); err != nil {
		t.Fatalf("recovering transaction commit: %v", err)
	}

	var after tracesDoc
	getJSON("/traces", &after)
	if len(after.Traces) != 1 {
		t.Fatalf("want exactly the forced trace in /traces, got %d", len(after.Traces))
	}
	tr := after.Traces[0]
	if tr.Forced != "recovery" {
		t.Fatalf("forced reason = %q, want \"recovery\"", tr.Forced)
	}
	if tr.Status != "commit" {
		t.Fatalf("trace status = %q, want \"commit\"", tr.Status)
	}
	var sawRecoverySpan, sawReplicaSpan bool
	walkSpans(tr.Root, func(s traceSpan) {
		if s.Name == "client.recovery" {
			sawRecoverySpan = true
		}
		if strings.HasPrefix(s.Name, "replica.") && strings.HasPrefix(s.Node, "r0.") {
			sawReplicaSpan = true
		}
	})
	if !sawRecoverySpan {
		t.Error("forced trace lacks the client.recovery span")
	}
	if !sawReplicaSpan {
		t.Error("forced trace lacks replica-side spans: the context did not propagate over TCP")
	}

	// /traces/slow indexes the finished forced transaction.
	var slow struct {
		Slow []struct {
			TraceID string `json:"trace_id"`
			Status  string `json:"status"`
		} `json:"slow"`
	}
	getJSON("/traces/slow", &slow)
	found := false
	for _, e := range slow.Slow {
		if e.TraceID == tr.TraceID {
			found = true
		}
	}
	if !found {
		t.Errorf("forced trace %s missing from /traces/slow", tr.TraceID)
	}

	// Every replica's flight recorder is mounted and recorded its start.
	var flight struct {
		Recorders []struct {
			Name   string `json:"name"`
			Events []struct {
				Kind string `json:"kind"`
			} `json:"events"`
		} `json:"recorders"`
	}
	getJSON("/debug/flightrec", &flight)
	if len(flight.Recorders) != cl.ReplicaCount() {
		t.Fatalf("flight recorders served = %d, want %d", len(flight.Recorders), cl.ReplicaCount())
	}
	for _, r := range flight.Recorders {
		started := false
		for _, e := range r.Events {
			if e.Kind == "start" {
				started = true
			}
		}
		if !started {
			t.Errorf("recorder %s has no start event", r.Name)
		}
	}
}

// TestTraceOverloadForcedCaptureE2E floods a shard past its admission cap
// and checks the third forced-capture rule: a transaction that received an
// explicit Overloaded shed appears in /traces even at sampling rate zero.
func TestTraceOverloadForcedCaptureE2E(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		Tracing:       true,
		TraceSample:   0,
		DispatchQueue: 8,
		VerifyWorkers: 1,
		PhaseTimeout:  30 * time.Millisecond,
		RetryTimeout:  time.Second,
	})
	defer cl.Close()
	cl.Load("k", enc(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		byz := cl.NewClient()
		wg.Add(1)
		go func() {
			defer wg.Done()
			inner := byz.Inner()
			for n := uint64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := inner.Begin()
				tx.Write("k", enc(n))
				inner.CommitFaulty(tx, client.FaultStallEarly)
			}
		}()
	}

	// Probe until one of the probe's transactions consumes an Overloaded
	// reply — that transaction's trace is force-captured mid-flight.
	probe := cl.NewClient()
	deadline := time.Now().Add(60 * time.Second)
	for probe.Stats().Overloads.Load() == 0 && time.Now().Before(deadline) {
		tx := probe.Begin()
		tx.Write("k", enc(999))
		_ = tx.Commit()
	}
	close(stop)
	wg.Wait()
	if probe.Stats().Overloads.Load() == 0 {
		t.Fatal("probe never saw an Overloaded reply: the flood did not saturate admission")
	}

	// The shed transaction must be in /traces, forced with reason overload.
	req := httptest.NewRequest(http.MethodGet, "/traces?n=256", nil)
	rec := httptest.NewRecorder()
	trace.TracesHandler(cl.Tracer()).ServeHTTP(rec, req)
	var doc tracesDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/traces JSON: %v", err)
	}
	for _, tr := range doc.Traces {
		if tr.Forced == "overload" {
			return
		}
	}
	t.Fatalf("no overload-forced trace among %d traces", len(doc.Traces))
}
