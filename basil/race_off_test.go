//go:build !race

package basil_test

// raceEnabled reports whether the race detector instruments this build.
// Timing-sensitive tests scale their workloads and protocol timeouts by
// it: instrumented crypto runs an order of magnitude slower, which is a
// property of the detector, not of the protocol under test.
const raceEnabled = false
