package basil_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/faults"
	"repro/internal/types"
	"repro/internal/verify"
)

// tickClock hands out strictly increasing microsecond values, one per
// call. Giving each fuzz client its own tickClock makes every (time,
// clientID) timestamp unique and the workload independent of wall time.
type tickClock struct{ now atomic.Uint64 }

func (c *tickClock) NowMicros() uint64 { return c.now.Add(1) }

// TestClusterFuzzSerializable runs a seeded random workload over the
// in-process Local transport with seeded link drops, then feeds every
// transaction that committed through the DSG oracle — the paper's
// correctness definition. Transactions whose outcome the storm left
// unknown (commit timed out mid-protocol) are resolved through the
// recovery path on a clean network before checking, since a transaction
// the client gave up on may still have committed and serve reads.
//
// The workload and the drop policy are both derived from the sub-test
// seed; a failure names it, so `-run 'TestClusterFuzzSerializable/seed=N'`
// reproduces the same message-loss pattern and transaction mix.
func TestClusterFuzzSerializable(t *testing.T) {
	for _, seed := range []int64{1, 42, 20260729} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fuzzClusterRun(t, seed)
		})
	}
}

func fuzzClusterRun(t *testing.T, seed int64) {
	const (
		workers  = 4
		nKeys    = 8
		maxTries = 30
	)
	// The race detector slows instrumented ed25519 by roughly an order of
	// magnitude; scale the workload down and the protocol timeouts up so
	// the storm stresses interleavings rather than the wall clock.
	txPerWkr, dropRate := 15, 0.02
	phase, retry := 40*time.Millisecond, 1200*time.Millisecond
	if raceEnabled {
		txPerWkr, dropRate = 5, 0.01
		phase, retry = 250*time.Millisecond, 8*time.Second
	}
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 2, BatchSize: 4,
		PhaseTimeout: phase,
		RetryTimeout: retry,
	})
	defer cl.Close()
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("fz%02d", i)
		cl.Load(keys[i], enc(0))
	}
	cl.Net().SetPolicy(faults.DropLinks(seed, dropRate))

	var (
		mu       sync.Mutex
		checker  verify.Checker
		unknowns []*types.TxMeta
		gaveUp   int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		c := cl.NewClientWithClock(&tickClock{})
		rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txPerWkr; i++ {
				committedOrGaveUp := false
				for attempt := 0; !committedOrGaveUp; attempt++ {
					tx := c.Begin()
					ok := true
					for _, ki := range rng.Perm(nKeys)[:1+rng.Intn(2)] {
						if _, err := tx.Read(keys[ki]); err != nil {
							ok = false
							break
						}
					}
					if !ok {
						tx.Abort()
					} else {
						for _, ki := range rng.Perm(nKeys)[:1+rng.Intn(2)] {
							tx.Write(keys[ki], enc(uint64(w*1000+i)))
						}
						err := tx.Commit()
						switch {
						case err == nil:
							mu.Lock()
							checker.Add(verify.FromMeta(tx.Meta()))
							mu.Unlock()
							committedOrGaveUp = true
						case errors.Is(err, basil.ErrAborted):
							// Definite abort: retry with a fresh timestamp.
						default:
							// Timeout mid-protocol: the outcome is unknown
							// and must be resolved before the oracle runs.
							mu.Lock()
							unknowns = append(unknowns, tx.Meta())
							mu.Unlock()
							committedOrGaveUp = true
						}
					}
					if !committedOrGaveUp && attempt >= maxTries {
						mu.Lock()
						gaveUp++
						mu.Unlock()
						committedOrGaveUp = true
					}
				}
			}
		}()
	}
	wg.Wait()

	// Heal the network and resolve every unknown outcome through the
	// recovery protocol; an unknown that committed must count in the DSG.
	// Unknowns can depend on each other (a vote defers until the
	// dependency decides), so resolution sweeps the list repeatedly:
	// finishing one transaction unblocks the replicas deferring another's
	// vote.
	cl.Net().SetPolicy(nil)
	resolver := cl.NewClientWithClock(&tickClock{})
	pending := unknowns
	for pass := 0; pass < 6 && len(pending) > 0; pass++ {
		var next []*types.TxMeta
		for _, meta := range pending {
			dec, _, err := resolver.Inner().FinishTransaction(meta)
			if err != nil {
				next = append(next, meta)
				continue
			}
			if dec == types.DecisionCommit {
				checker.Add(verify.FromMeta(meta))
			}
		}
		pending = next
	}
	if len(pending) > 0 {
		for _, m := range pending {
			dumpStuck(t, cl, m)
		}
		t.Fatalf("seed %d: %d of %d unknown transactions unresolvable after healing (first: %v)",
			seed, len(pending), len(unknowns), pending[0].ID())
	}

	if checker.Len() == 0 {
		t.Fatalf("seed %d: storm committed nothing (gave up %d)", seed, gaveUp)
	}
	if err := checker.CheckSerializable(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := checker.CheckTimestampOrderConsistent(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	assertReplicaStateBounded(t, cl)
	t.Logf("seed %d: %d committed, %d unknown resolved, %d gave up",
		seed, checker.Len(), len(unknowns), gaveUp)
}

// assertReplicaStateBounded drives one checkpoint with a watermark above
// every storm timestamp on every replica, then asserts the retained
// protocol state is O(live): bounded by the store's prepared set
// (transactions whose decision never resolved), independent of how many
// transactions the storm pushed through. This is the lifecycle oracle —
// before watermark collection, len(Replica.txs) grew with history and
// this assertion fails. Call it only after every store-reading audit:
// the GC at this watermark truncates finalized history.
func assertReplicaStateBounded(t *testing.T, cl *basil.Cluster) {
	t.Helper()
	// Let fire-and-forget tails (writeback broadcasts from the last
	// recovery round) land before the collection pass.
	time.Sleep(100 * time.Millisecond)
	wm := types.Timestamp{Time: 1 << 40} // above every tickClock timestamp
	for s := 0; s < cl.Shards(); s++ {
		for i := 0; i < cl.ReplicaCount(); i++ {
			r := cl.Replica(s, i)
			if err := r.Checkpoint(wm); err != nil {
				t.Fatalf("r%d.%d: checkpoint: %v", s, i, err)
			}
			held := r.TxStateCount()
			live := len(r.Store().PreparedIDs())
			// Slack covers handler tails that rebuild a state while the
			// collection pass runs; anything beyond it is a leak.
			const slack = 4
			if held > live+slack {
				t.Fatalf("r%d.%d holds %d txStates for %d live prepared transactions — protocol state is not bounded by the live set",
					s, i, held, live)
			}
		}
	}
}

// dumpStuck logs each replica's view of a transaction the healed-network
// recovery could not finish — the first thing a debugging session needs
// from a failed seed.
func dumpStuck(t *testing.T, cl *basil.Cluster, meta *types.TxMeta) {
	id := meta.ID()
	t.Logf("stuck tx %v ts=%v shards=%v deps=%d", id, meta.Timestamp, meta.Shards, len(meta.Deps))
	for _, d := range meta.Deps {
		t.Logf("  dep %v ver=%v", d.TxID, d.Version)
	}
	for s := 0; s < cl.Shards(); s++ {
		for i := 0; i < cl.ReplicaCount(); i++ {
			st := cl.Replica(s, i).Store().TxStatusOf(id)
			depsSt := ""
			for _, d := range meta.Deps {
				depsSt += fmt.Sprintf(" dep=%v", cl.Replica(s, i).Store().TxStatusOf(d.TxID))
			}
			t.Logf("  r%d.%d: status=%v%s", s, i, st, depsSt)
		}
	}
}
