// Package basil is the public API of this Basil reproduction: a
// leaderless, transactional, Byzantine fault-tolerant key-value store
// (Suri-Payer et al., SOSP 2021).
//
// A Cluster wires s shards of n = 5f+1 replicas over a transport; Clients
// run interactive serializable transactions against it:
//
//	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
//	defer cl.Close()
//	c := cl.NewClient()
//	err := c.Run(func(tx *basil.Txn) error {
//	    v, _ := tx.Read("balance")
//	    tx.Write("balance", next(v))
//	    return nil
//	})
//
// The store guarantees Byzantine serializability (correct clients observe
// a serializable history producible by correct participants alone) and
// Byzantine independence (no group of only-Byzantine participants decides
// the outcome of a correct client's transaction).
package basil

import (
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/types"
)

// ErrAborted is returned by Txn.Commit when the transaction failed
// serializability validation; the application may retry.
var ErrAborted = client.ErrAborted

// ErrTimeout is returned when a protocol phase starved even after
// recovery (severe partition or overload).
var ErrTimeout = client.ErrTimeout

// Options configures a Cluster. The zero value is completed with sane
// defaults by NewCluster.
type Options struct {
	// F is the per-shard fault threshold; each shard runs 5F+1 replicas.
	// Default 1.
	F int
	// Shards is the number of data shards. Default 1.
	Shards int
	// NoSignatures disables all signing/verification (the paper's
	// Basil-NoProofs ablation, Fig. 5a).
	NoSignatures bool
	// BatchSize is the reply-signature batch size b (paper §4.4, Fig 6b).
	// Default 1 (no batching).
	BatchSize int
	// BatchDelay bounds how long a partial batch may wait. Default 500µs.
	BatchDelay time.Duration
	// VerifyWorkers sizes each replica's ingest worker pool (and the pool
	// clients share for certificate verification): signature checks and
	// message handling run concurrently on it. 0 defaults to GOMAXPROCS;
	// 1 reproduces the old serial message loop.
	VerifyWorkers int
	// StoreStripes is each replica store's per-key lock-stripe count.
	// 0 defaults to store.DefaultStripes; 1 is the single-lock baseline
	// the parallel experiment compares against.
	StoreStripes int
	// DeltaMicros is the timestamp admission bound δ. Default 60s.
	DeltaMicros uint64
	// DataDir, if non-empty, makes every replica durable: stage-1 votes
	// and logged ST2 decisions reach a per-replica write-ahead log under
	// DataDir/s<shard>-r<index> before the replies they justify are
	// sent, and RestartReplica rebuilds a crashed replica from it.
	DataDir string
	// WALFlushDelay is the WAL group-commit window: concurrent prepares
	// inside one window share a single fsync. 0 uses the wal default
	// (200µs).
	WALFlushDelay time.Duration
	// WALSyncDelay, if non-nil, is consulted before every WAL fsync on
	// replica (shard, index) and the returned duration is slept out first
	// — the scenario harness's slow-disk chaos injection (see
	// wal.Options.SyncDelay). Must be safe for concurrent use; it is
	// consulted from every replica's WAL flusher. Requires DataDir.
	WALSyncDelay func(shard, index int32) time.Duration
	// CheckpointEvery, if positive (with DataDir), periodically
	// checkpoints each replica at a clock-derived GC watermark, bounding
	// log and memory growth.
	CheckpointEvery time.Duration
	// ReadWait is how many read replies a client needs: 1, F+1 (default)
	// or 2F+1 (Fig. 5b).
	ReadWait int
	// DisableFastPath forces ST2 logging on every commit (Fig. 6a NoFP).
	DisableFastPath bool
	// FastPathWait bounds the extra wait for fast-path unanimity.
	FastPathWait time.Duration
	// PhaseTimeout bounds each protocol phase before recovery kicks in.
	PhaseTimeout time.Duration
	// RetryTimeout bounds a whole commit attempt.
	RetryTimeout time.Duration
	// ShardOf overrides key placement (default: FNV-1a hash mod Shards).
	ShardOf func(key string) int32
	// Clock overrides the time source (tests inject skewed clocks).
	Clock clock.Clock
	// Seed makes key generation deterministic. Default 1.
	Seed int64
	// Net overrides the transport (default: in-process Local network).
	// Mutually exclusive with TCPLoopback.
	Net *transport.Local
	// TCPLoopback runs every replica and every client on its own TCP
	// transport bound to 127.0.0.1 — one socket mesh inside one process,
	// carrying the exact framed wire format a real multi-process
	// deployment uses (see internal/transport/tcp.go). Useful for
	// measuring the wire path without multi-process orchestration.
	TCPLoopback bool
	// ReplicaByzantine, if set, installs a misbehavior strategy on the
	// selected replicas. Used by the fault-injection harness.
	ReplicaByzantine func(shard, index int32) replica.ByzantineStrategy
	// AllowUnvalidatedST2 disables replica-side ST2 tally validation.
	// Test/experiment use only: it models the paper's "equiv-forced"
	// scenario where clients are artificially allowed to equivocate.
	AllowUnvalidatedST2 bool
	// DispatchQueue caps each replica's admitted-but-unprocessed message
	// count: arrivals beyond it are shed with an explicit Overloaded reply
	// instead of queueing without bound (see internal/replica/admission.go).
	// 0 uses the replica default; negative disables admission control (the
	// unbounded pre-admission behavior, kept as the overload-experiment
	// baseline).
	DispatchQueue int
	// Tracing enables the end-to-end transaction tracer (internal/trace):
	// one shared Tracer spans clients, transports and replicas, served at
	// /traces on the admin server. Off by default — the seed-identical
	// configuration carries a nil tracer everywhere.
	Tracing bool
	// TraceSample is the probability a transaction is sampled at Begin
	// (requires Tracing). Transactions that hit an Overloaded shed,
	// recovery, or the fallback are captured regardless, so 0 keeps only
	// the tail traces.
	TraceSample float64
	// TraceRing bounds the completed-span ring; 0 uses the trace default.
	TraceRing int
}

func (o *Options) withDefaults() {
	if o.F <= 0 {
		o.F = 1
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = 500 * time.Microsecond
	}
	if o.DeltaMicros == 0 {
		o.DeltaMicros = 60_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	if o.ShardOf == nil {
		shards := int32(o.Shards)
		o.ShardOf = func(key string) int32 {
			h := fnv.New32a()
			h.Write([]byte(key))
			return int32(h.Sum32() % uint32(shards))
		}
	}
}

// Cluster is a running Basil deployment: Shards×(5F+1) replicas attached
// to one transport, plus the key registry all parties verify against.
type Cluster struct {
	opts    Options
	net     *transport.Local
	ownNet  bool
	tcpBook map[transport.Addr]string // TCPLoopback address book

	// tcpMu guards tcpNets: TCPLoopback clients register transports
	// concurrently with Close tearing them down.
	tcpMu   sync.Mutex
	tcpNets []*transport.TCP // every owned TCP transport; guarded by tcpMu

	registry *cryptoutil.Registry
	replicas [][]*replica.Replica // [shard][index]
	signerOf quorum.SignerOf
	nextCli  atomic.Int32
	clients  []*Client
	// tracer is shared by every client, transport and replica of the
	// cluster (nil when Options.Tracing is off — all record paths are
	// nil-safe).
	tracer *trace.Tracer
	// cliPool is the verification pool shared by every client of this
	// cluster (replicas each own their ingest pool).
	cliPool *cryptoutil.VerifyPool
}

// NewCluster builds and starts a cluster.
func NewCluster(opts Options) *Cluster {
	opts.withDefaults()
	n := 5*opts.F + 1
	net := opts.Net
	own := false
	if opts.TCPLoopback && net != nil {
		panic("basil: Options.Net and TCPLoopback are mutually exclusive")
	}
	if net == nil && !opts.TCPLoopback {
		net = transport.NewLocal()
		own = true
		if q := opts.DispatchQueue; q >= 0 {
			if q == 0 {
				q = 1024 // mirrors the replica's default admission cap
			}
			// Bound the replica mailboxes too, with headroom above the
			// admission cap so floods are shed with an Overloaded reply by
			// admission rather than dropped silently at the mailbox.
			net.SetReplicaQueueCap(4 * q)
		}
	}
	reg := cryptoutil.NewRegistry(schemeOf(opts), opts.Shards*n, opts.Seed)
	signerOf := func(shard, idx int32) int32 { return shard*int32(n) + idx }
	c := &Cluster{
		opts: opts, net: net, ownNet: own, registry: reg, signerOf: signerOf,
		replicas: make([][]*replica.Replica, opts.Shards),
		cliPool:  cryptoutil.NewVerifyPool(opts.VerifyWorkers),
	}
	if opts.Tracing {
		c.tracer = trace.New(trace.Options{SampleRate: opts.TraceSample, RingSize: opts.TraceRing})
	}
	if opts.TCPLoopback {
		c.tcpBook = make(map[transport.Addr]string)
	}
	for s := 0; s < opts.Shards; s++ {
		c.replicas[s] = make([]*replica.Replica, n)
		for i := 0; i < n; i++ {
			var nodeNet transport.Network = net
			if opts.TCPLoopback {
				// Each replica is its own "process": a listener on an
				// ephemeral loopback port, registered in the shared
				// address book before any traffic flows.
				tn := c.newTCPNet("127.0.0.1:0")
				c.tcpBook[transport.ReplicaAddr(int32(s), int32(i))] = tn.ListenAddr()
				nodeNet = tn
			}
			c.replicas[s][i] = replica.New(c.replicaConfig(int32(s), int32(i), nodeNet))
		}
	}
	return c
}

// replicaConfig builds the replica configuration for (shard, index) on
// nodeNet — shared between initial construction and RestartReplica so a
// restarted replica runs exactly the configuration it crashed with.
func (c *Cluster) replicaConfig(s, i int32, nodeNet transport.Network) replica.Config {
	cfg := replica.Config{
		Shard: s, Index: i, F: c.opts.F,
		DeltaMicros: c.opts.DeltaMicros,
		BatchSize:   c.opts.BatchSize, BatchDelay: c.opts.BatchDelay,
		VerifyWorkers: c.opts.VerifyWorkers, Stripes: c.opts.StoreStripes,
		Clock: c.opts.Clock, Registry: c.registry,
		SignerID: c.signerOf(s, i), SignerOf: c.signerOf,
		Net:                 nodeNet,
		DataDir:             c.replicaDataDir(s, i),
		WALFlushDelay:       c.opts.WALFlushDelay,
		CheckpointEvery:     c.opts.CheckpointEvery,
		AllowUnvalidatedST2: c.opts.AllowUnvalidatedST2,
		DispatchQueue:       c.opts.DispatchQueue,
		Tracer:              c.tracer,
	}
	if c.opts.ReplicaByzantine != nil {
		cfg.Byzantine = c.opts.ReplicaByzantine(s, i)
	}
	if d := c.opts.WALSyncDelay; d != nil {
		cfg.WALSyncDelay = func() time.Duration { return d(s, i) }
	}
	return cfg
}

// replicaDataDir returns the per-replica WAL directory ("" when the
// cluster is not durable).
func (c *Cluster) replicaDataDir(s, i int32) string {
	if c.opts.DataDir == "" {
		return ""
	}
	return filepath.Join(c.opts.DataDir, fmt.Sprintf("s%d-r%d", s, i))
}

// RestartReplica models a crash-restart: the old replica (already Closed
// by the caller, or closed here) is replaced by one rebuilt from its
// write-ahead log, taking over the same address. The restarted replica
// rejoins with every pre-crash promise — stage-1 votes, logged
// decisions, finalized outcomes — intact. Requires Options.DataDir;
// TCPLoopback clusters are not restartable in-process (each replica owns
// a listener whose port dies with it).
func (c *Cluster) RestartReplica(shard, index int) (*replica.Replica, error) {
	if c.opts.DataDir == "" {
		return nil, errors.New("basil: RestartReplica needs Options.DataDir")
	}
	if c.opts.TCPLoopback {
		return nil, errors.New("basil: RestartReplica unsupported over TCPLoopback")
	}
	old := c.replicas[shard][index]
	old.Close()
	r, err := replica.Restore(
		c.replicaConfig(int32(shard), int32(index), c.net),
		c.replicaDataDir(int32(shard), int32(index)))
	if err != nil {
		return nil, err
	}
	c.replicas[shard][index] = r
	return r, nil
}

// newTCPNet creates one owned TCP transport over the cluster's shared
// address book. Loopback listen failures mean the host cannot run the
// requested topology at all, so they are fatal.
func (c *Cluster) newTCPNet(listen string) *transport.TCP {
	tn, err := transport.NewTCPOpts(listen, c.tcpBook, transport.TCPOptions{Tracer: c.tracer})
	if err != nil {
		panic(fmt.Sprintf("basil: TCPLoopback transport: %v", err))
	}
	c.tcpMu.Lock()
	c.tcpNets = append(c.tcpNets, tn)
	c.tcpMu.Unlock()
	return tn
}

// clientNet returns the transport a new client should attach to: the
// shared net, or (TCPLoopback) a fresh client-only TCP transport that
// reaches replicas through the address book and receives replies over
// its dialed connections (reverse routing).
func (c *Cluster) clientNet() transport.Network {
	if !c.opts.TCPLoopback {
		return c.net
	}
	return c.newTCPNet("")
}

func schemeOf(o Options) cryptoutil.Scheme {
	if o.NoSignatures {
		return cryptoutil.SchemeNone
	}
	return cryptoutil.SchemeEd25519
}

// Load installs a key's initial value on its shard (genesis version,
// outside the protocol). Call before serving traffic.
func (c *Cluster) Load(key string, value []byte) {
	s := c.opts.ShardOf(key)
	for _, r := range c.replicas[s] {
		r.LoadGenesis(key, value)
	}
}

// NewClient attaches a new client to the cluster.
func (c *Cluster) NewClient() *Client {
	return c.newClientWithClock(c.opts.Clock)
}

// NewClientWithClock attaches a client that uses its own clock — used by
// tests to model clock skew between a client and the replicas (δ bound).
func (c *Cluster) NewClientWithClock(clk clock.Clock) *Client {
	return c.newClientWithClock(clk)
}

func (c *Cluster) newClientWithClock(clk clock.Clock) *Client {
	id := c.nextCli.Add(1)
	inner := client.New(client.Config{
		ID: id, F: c.opts.F, NumShards: int32(c.opts.Shards),
		ShardOf: c.opts.ShardOf, Clock: clk,
		Registry: c.registry, SignerOf: c.signerOf, Net: c.clientNet(),
		ReadWait: c.opts.ReadWait, DisableFastPath: c.opts.DisableFastPath,
		FastPathWait: c.opts.FastPathWait, PhaseTimeout: c.opts.PhaseTimeout,
		RetryTimeout: c.opts.RetryTimeout, VerifyPool: c.cliPool,
		Tracer: c.tracer,
	})
	cl := &Client{inner: inner}
	c.clients = append(c.clients, cl)
	return cl
}

// Replica exposes a replica for inspection or fault injection in tests.
func (c *Cluster) Replica(shard, index int) *replica.Replica {
	return c.replicas[shard][index]
}

// ReplicaCount returns replicas per shard (5F+1).
func (c *Cluster) ReplicaCount() int { return 5*c.opts.F + 1 }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.opts.Shards }

// Net exposes the transport for policy injection (latency, partitions).
// It is nil when the cluster runs over TCPLoopback — link policies apply
// to the in-process Local network only.
func (c *Cluster) Net() *transport.Local { return c.net }

// Tracer exposes the cluster's shared transaction tracer (nil unless
// Options.Tracing): snapshot it in tests, or mount its handlers on an
// admin server via trace.TracesHandler and friends.
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// Close flushes replicas, drains the client verification pool, and stops
// the owned transports.
func (c *Cluster) Close() {
	for _, shard := range c.replicas {
		for _, r := range shard {
			r.Close()
		}
	}
	c.cliPool.Close()
	if c.ownNet {
		c.net.Close()
	}
	c.tcpMu.Lock()
	nets := c.tcpNets
	c.tcpNets = nil
	c.tcpMu.Unlock()
	for _, tn := range nets {
		tn.Close()
	}
}

// Client is a Basil client handle. Use one per concurrent actor.
type Client struct {
	inner *client.Client
}

// Txn is one interactive transaction: reads reach replicas, writes buffer
// locally until Commit.
type Txn struct {
	inner *client.Txn
}

// Begin starts a transaction.
func (c *Client) Begin() *Txn { return &Txn{inner: c.inner.Begin()} }

// Stats exposes client protocol counters.
func (c *Client) Stats() *client.Stats { return &c.inner.Stats }

// Inner exposes the internal client to the benchmark harness and fault
// injectors; applications should not need it.
func (c *Client) Inner() *client.Client { return c.inner }

// Run executes fn inside a transaction, retrying serialization aborts
// with exponential backoff (the paper's closed-loop client behavior).
// fn may return ErrAborted itself to force a retry.
func (c *Client) Run(fn func(tx *Txn) error) error {
	backoff := 200 * time.Microsecond
	for attempt := 0; ; attempt++ {
		tx := c.Begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Abort()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrTimeout) {
			return err
		}
		if attempt > 50 {
			return fmt.Errorf("basil: transaction starved after %d attempts: %w", attempt, err)
		}
		time.Sleep(backoff)
		if backoff < 20*time.Millisecond {
			backoff *= 2
		}
	}
}

// Read returns key's value at the transaction's snapshot timestamp.
func (t *Txn) Read(key string) ([]byte, error) { return t.inner.Read(key) }

// Write buffers a write, visible to others only after Commit.
func (t *Txn) Write(key string, value []byte) { t.inner.Write(key, value) }

// Commit validates and commits; returns ErrAborted on conflicts.
func (t *Txn) Commit() error { return t.inner.Commit() }

// Abort abandons the transaction.
func (t *Txn) Abort() { t.inner.Abort() }

// Inner exposes the internal transaction for the fault harness.
func (t *Txn) Inner() *client.Txn { return t.inner }

// Meta returns the transaction's metadata snapshot (read set with observed
// versions, write set, participant shards). The verification harness uses
// it to rebuild committed histories.
func (t *Txn) Meta() *types.TxMeta { return t.inner.MetaSnapshot() }
