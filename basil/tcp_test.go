package basil_test

import (
	"fmt"
	"testing"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/cryptoutil"
	"repro/internal/quorum"
	"repro/internal/replica"
	"repro/internal/transport"
)

// TestTCPDeployment runs a full shard of replicas, each on its own TCP
// network (modeling separate processes), plus a TCP client, and commits a
// transaction end to end — exercising exactly what cmd/basil-server and
// cmd/basil-kv wire up.
func TestTCPDeployment(t *testing.T) {
	const f = 1
	n := 5*f + 1
	book := map[transport.Addr]string{}
	reg := cryptoutil.NewRegistry(cryptoutil.SchemeEd25519, n, 1)
	signerOf := quorum.SignerOf(func(s, i int32) int32 { return i })

	var nets []*transport.TCP
	var reps []*replica.Replica
	for i := 0; i < n; i++ {
		tn, err := transport.NewTCP("127.0.0.1:0", book)
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, tn)
		book[transport.ReplicaAddr(0, int32(i))] = tn.ListenAddr()
	}
	defer func() {
		for _, r := range reps {
			r.Close()
		}
		for _, tn := range nets {
			tn.Close()
		}
	}()
	for i := 0; i < n; i++ {
		r := replica.New(replica.Config{
			Shard: 0, Index: int32(i), F: f,
			DeltaMicros: 60_000_000,
			Registry:    reg,
			SignerID:    int32(i),
			SignerOf:    signerOf,
			Net:         nets[i],
		})
		r.LoadGenesis("x", []byte("tcp-genesis"))
		reps = append(reps, r)
	}

	clientNet, err := transport.NewTCP("127.0.0.1:0", book)
	if err != nil {
		t.Fatal(err)
	}
	defer clientNet.Close()
	c := client.New(client.Config{
		ID: 500, F: f, NumShards: 1,
		ShardOf:  func(string) int32 { return 0 },
		Registry: reg, SignerOf: signerOf, Net: clientNet,
	})

	tx := c.Begin()
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("tcp read: %v", err)
	}
	if string(v) != "tcp-genesis" {
		t.Fatalf("read %q", v)
	}
	tx.Write("x", []byte("tcp-committed"))
	if err := tx.Commit(); err != nil {
		t.Fatalf("tcp commit: %v", err)
	}

	tx2 := c.Begin()
	v2, err := tx2.Read("x")
	if err != nil {
		t.Fatalf("tcp read2: %v", err)
	}
	tx2.Abort()
	if string(v2) != "tcp-committed" {
		t.Fatalf("after commit read %q", v2)
	}
	if got := fmt.Sprint(c.Stats.TxCommitted.Load()); got != "1" {
		t.Fatalf("committed count %s", got)
	}
}

// TestTCPLoopbackCluster exercises the same socket mesh through the public
// API: basil.Options.TCPLoopback gives every replica and client its own
// TCP transport on loopback, so the whole protocol crosses the framed
// canonical wire format.
func TestTCPLoopbackCluster(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 2, TCPLoopback: true})
	defer cl.Close()
	cl.Load("a", []byte("1"))
	cl.Load("b", []byte("2"))

	c := cl.NewClient()
	err := c.Run(func(tx *basil.Txn) error {
		va, err := tx.Read("a")
		if err != nil {
			return err
		}
		vb, err := tx.Read("b")
		if err != nil {
			return err
		}
		tx.Write("a", append(va, vb...))
		return nil
	})
	if err != nil {
		t.Fatalf("tcp-loopback txn: %v", err)
	}

	tx := c.Begin()
	v, err := tx.Read("a")
	tx.Abort()
	if err != nil {
		t.Fatalf("tcp-loopback read-back: %v", err)
	}
	if string(v) != "12" {
		t.Fatalf("read %q, want %q", v, "12")
	}
}
