package basil_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/faults"
	"repro/internal/store"
	"repro/internal/types"
	"repro/internal/verify"
)

// TestRestartReplicaRejoins is the deterministic half of the
// crash-restart battery: commit through a healthy cluster, kill one
// replica, keep committing without it, restart it from its WAL, and
// check that everything it acknowledged before the crash is still in
// its store. (The promise-level assertions — same vote re-served, same
// logged decision — live in internal/replica/durability_test.go, driven
// against a single replica.)
func TestRestartReplicaRejoins(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		DataDir:       t.TempDir(),
		WALFlushDelay: 100 * time.Microsecond,
	})
	defer cl.Close()
	for i := 0; i < 4; i++ {
		cl.Load(fmt.Sprintf("k%d", i), enc(0))
	}
	c := cl.NewClientWithClock(&tickClock{})

	write := func(key string, v uint64) {
		t.Helper()
		if err := c.Run(func(tx *basil.Txn) error {
			if _, err := tx.Read(key); err != nil {
				return err
			}
			tx.Write(key, enc(v))
			return nil
		}); err != nil {
			t.Fatalf("write %s=%d: %v", key, v, err)
		}
	}

	write("k0", 1)
	write("k1", 2)

	const victim = 3
	// Writebacks are asynchronous: wait until the victim has applied both
	// commits, so the crash provably erases state it already held.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, v0, ok0 := cl.Replica(0, victim).Store().LatestCommitted("k0")
		_, v1, ok1 := cl.Replica(0, victim).Store().LatestCommitted("k1")
		if ok0 && ok1 && decodeVal(v0) == 1 && decodeVal(v1) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never applied the pre-crash writebacks")
		}
		time.Sleep(time.Millisecond)
	}
	cl.Replica(0, victim).Close() // crash

	write("k2", 3) // the cluster survives on 5 of 6 replicas

	r, err := cl.RestartReplica(0, victim)
	if err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	// Pre-crash commits the victim acknowledged are back, values intact.
	for key, want := range map[string]uint64{"k0": 1, "k1": 2} {
		_, val, ok := r.Store().LatestCommitted(key)
		if !ok {
			t.Fatalf("restarted replica lost committed key %s", key)
		}
		if got := decodeVal(val); got != want {
			t.Fatalf("restarted replica: %s = %d, want %d", key, got, want)
		}
	}
	// And it serves new traffic.
	write("k3", 4)
}

func decodeVal(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// TestRestartReplicaRequiresDataDir pins the error contract.
func TestRestartReplicaRequiresDataDir(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	if _, err := cl.RestartReplica(0, 0); err == nil {
		t.Fatal("RestartReplica without DataDir did not error")
	}
}

// TestCrashRestartFuzz is the crash-restart scenario of the fuzz
// battery: a seeded random workload runs over a lossy network; mid-storm
// one replica is killed outright, the storm continues against the
// surviving 5 (exactly the ST2 logging quorum), the victim is restarted
// from its write-ahead log, the net heals, every unknown outcome is
// resolved through recovery, and the full committed history — spanning
// the crash — must pass the DSG serializability oracle.
func TestCrashRestartFuzz(t *testing.T) {
	for _, seed := range []int64{3, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			crashFuzzRun(t, seed)
		})
	}
}

func crashFuzzRun(t *testing.T, seed int64) {
	const (
		workers  = 4
		nKeys    = 8
		maxTries = 30
		victim   = 2
	)
	// Race-detector scaling: see fuzz_test.go — instrumented ed25519 is
	// an order of magnitude slower, so shrink the storm and stretch the
	// protocol timeouts.
	txPerWkr, dropRate := 12, 0.02
	phase, retry := 40*time.Millisecond, 1200*time.Millisecond
	if raceEnabled {
		txPerWkr, dropRate = 4, 0.01
		phase, retry = 250*time.Millisecond, 8*time.Second
	}
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1, BatchSize: 4,
		DataDir:       t.TempDir(),
		WALFlushDelay: 100 * time.Microsecond,
		PhaseTimeout:  phase,
		RetryTimeout:  retry,
	})
	defer cl.Close()
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("cz%02d", i)
		cl.Load(keys[i], enc(0))
	}
	cl.Net().SetPolicy(faults.DropLinks(seed, dropRate))

	var (
		mu        sync.Mutex
		checker   verify.Checker
		committed []types.TxID // ids fed to the checker, for the rejoin audit
		unknowns  []*types.TxMeta
		gaveUp    int
	)
	// The killer waits for roughly half the workload, then crashes the
	// victim mid-flight: whatever it has promised by then is exactly what
	// its WAL must carry back.
	var committedSoFar int
	killAt := workers * txPerWkr / 2
	killed := make(chan struct{})
	var killOnce sync.Once
	noteProgress := func() {
		mu.Lock()
		committedSoFar++
		hit := committedSoFar == killAt
		mu.Unlock()
		if hit {
			killOnce.Do(func() {
				cl.Replica(0, victim).Close()
				close(killed)
			})
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		c := cl.NewClientWithClock(&tickClock{})
		rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txPerWkr; i++ {
				committedOrGaveUp := false
				for attempt := 0; !committedOrGaveUp; attempt++ {
					tx := c.Begin()
					ok := true
					for _, ki := range rng.Perm(nKeys)[:1+rng.Intn(2)] {
						if _, err := tx.Read(keys[ki]); err != nil {
							ok = false
							break
						}
					}
					if !ok {
						tx.Abort()
					} else {
						for _, ki := range rng.Perm(nKeys)[:1+rng.Intn(2)] {
							tx.Write(keys[ki], enc(uint64(w*1000+i)))
						}
						err := tx.Commit()
						switch {
						case err == nil:
							mu.Lock()
							checker.Add(verify.FromMeta(tx.Meta()))
							committed = append(committed, tx.Meta().ID())
							mu.Unlock()
							noteProgress()
							committedOrGaveUp = true
						case errors.Is(err, basil.ErrAborted):
							// Definite abort: retry with a fresh timestamp.
						default:
							// Timeout mid-protocol (the crash window makes
							// these common): outcome unknown, resolve later.
							mu.Lock()
							unknowns = append(unknowns, tx.Meta())
							mu.Unlock()
							committedOrGaveUp = true
						}
					}
					if !committedOrGaveUp && attempt >= maxTries {
						mu.Lock()
						gaveUp++
						mu.Unlock()
						committedOrGaveUp = true
					}
				}
			}
		}()
	}
	wg.Wait()

	select {
	case <-killed:
	default:
		t.Fatalf("seed %d: storm finished without reaching the kill point (%d commits)", seed, killAt)
	}

	// Restart the victim from its WAL, heal the network, and resolve
	// every unknown through recovery — a transaction the storm abandoned
	// may still have committed and must count in the DSG.
	restarted, err := cl.RestartReplica(0, victim)
	if err != nil {
		t.Fatalf("seed %d: RestartReplica: %v", seed, err)
	}
	cl.Net().SetPolicy(nil)
	resolver := cl.NewClientWithClock(&tickClock{})
	pending := unknowns
	for pass := 0; pass < 6 && len(pending) > 0; pass++ {
		var next []*types.TxMeta
		for _, meta := range pending {
			dec, _, err := resolver.Inner().FinishTransaction(meta)
			if err != nil {
				next = append(next, meta)
				continue
			}
			if dec == types.DecisionCommit {
				checker.Add(verify.FromMeta(meta))
				committed = append(committed, meta.ID())
			}
		}
		pending = next
	}
	if len(pending) > 0 {
		for _, m := range pending {
			dumpStuck(t, cl, m)
		}
		t.Fatalf("seed %d: %d of %d unknowns unresolvable after restart+heal (first: %v)",
			seed, len(pending), len(unknowns), pending[0].ID())
	}

	if checker.Len() == 0 {
		t.Fatalf("seed %d: storm committed nothing (gave up %d)", seed, gaveUp)
	}
	if err := checker.CheckSerializable(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := checker.CheckTimestampOrderConsistent(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	// The restarted replica must not contradict the oracle's history: no
	// transaction the DSG counts as committed may be recorded aborted on
	// it (it may simply not know late ones — it was dead).
	contradictions := 0
	for _, id := range committed {
		if restarted.Store().TxStatusOf(id) == store.StatusAborted {
			contradictions++
		}
	}
	if contradictions > 0 {
		t.Fatalf("seed %d: restarted replica records %d committed txs as aborted", seed, contradictions)
	}
	// Last check by design: the bounded-state pass checkpoints at a
	// watermark above the whole storm, which GC-truncates the finalized
	// history the contradiction audit above reads.
	assertReplicaStateBounded(t, cl)
	t.Logf("seed %d: %d committed, %d unknown resolved, %d gave up, wal stats %+v",
		seed, checker.Len(), len(unknowns), gaveUp, restarted.WALStats())
}
