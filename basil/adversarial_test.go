package basil_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/basil"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/replica"
	"repro/internal/types"
	"repro/internal/verify"
)

// timestampAt builds a watermark timestamp at time t.
func timestampAt(t uint64) types.Timestamp { return types.Timestamp{Time: t} }

// TestSerializabilityUnderContention runs concurrent random transactions
// and validates the committed history against the DSG oracle.
func TestSerializabilityUnderContention(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 2, BatchSize: 4})
	defer cl.Close()
	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		cl.Load(k, enc(0))
	}

	var mu sync.Mutex
	var checker verify.Checker
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := cl.NewClient()
		rng := rand.New(rand.NewSource(int64(w) + 100))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for attempt := 0; ; attempt++ {
					tx := c.Begin()
					k1 := keys[rng.Intn(len(keys))]
					k2 := keys[rng.Intn(len(keys))]
					v1, err := tx.Read(k1)
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					if _, err := tx.Read(k2); err != nil {
						t.Errorf("read: %v", err)
						return
					}
					tx.Write(k1, enc(dec(v1)+1))
					err = tx.Commit()
					if err == nil {
						mu.Lock()
						checker.Add(verify.FromMeta(tx.Meta()))
						mu.Unlock()
						break
					}
					if attempt > 60 {
						t.Errorf("starved")
						return
					}
					time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	if err := checker.CheckSerializable(); err != nil {
		t.Fatalf("history not serializable: %v", err)
	}
	if err := checker.CheckTimestampOrderConsistent(); err != nil {
		t.Fatalf("timestamp order violated: %v", err)
	}
	if checker.Len() != 100 {
		t.Fatalf("expected 100 committed txs, got %d", checker.Len())
	}
}

// TestByzantineRepliesVoteAbortCannotBlockCommit: f replicas always voting
// abort disable the fast path but cannot abort correct transactions
// (Byzantine independence: AQ needs f+1).
func TestByzantineVoteAbortCannotBlockCommit(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		ReplicaByzantine: func(shard, index int32) replica.ByzantineStrategy {
			if index == 0 { // exactly f = 1 Byzantine replica
				return faults.VoteAbortReplica{}
			}
			return nil
		},
	})
	defer cl.Close()
	cl.Load("x", enc(1))
	c := cl.NewClient()
	for i := 0; i < 5; i++ {
		tx := c.Begin()
		v, err := tx.Read("x")
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		tx.Write("x", enc(dec(v)+1))
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d failed despite only f Byzantine replicas: %v", i, err)
		}
	}
	st := c.Stats()
	if st.FastPathTaken.Load() != 0 {
		t.Fatal("an always-abort replica must kill the unanimous fast path")
	}
	if st.SlowPathTaken.Load() == 0 {
		t.Fatal("slow path should have been used")
	}
}

// TestUnresponsiveRepliesTolerated: f silent replicas (reads and votes)
// must not prevent progress.
func TestUnresponsiveRepliesTolerated(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		ReplicaByzantine: func(shard, index int32) replica.ByzantineStrategy {
			if index == 5 {
				return faults.UnresponsiveReplica{Reads: true, Votes: true}
			}
			return nil
		},
	})
	defer cl.Close()
	cl.Load("x", enc(7))
	c := cl.NewClient()
	tx := c.Begin()
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("read with silent replica: %v", err)
	}
	tx.Write("x", enc(dec(v)*2))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit with silent replica: %v", err)
	}
}

// TestStalledTransactionFinishedByOtherClient: a Byzantine client prepares
// a transaction and stalls; a correct client that depends on its write
// finishes it via the fallback (paper §5 common case).
func TestStalledTransactionFinishedByOtherClient(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1, PhaseTimeout: 40 * time.Millisecond,
	})
	defer cl.Close()
	cl.Load("x", enc(10))

	byz := cl.NewClient()
	btx := byz.Begin()
	v, err := btx.Read("x")
	if err != nil {
		t.Fatalf("byz read: %v", err)
	}
	btx.Write("x", enc(dec(v)+100))
	// Prepare everywhere but never write back (stall-late).
	if ok := byz.Inner().CommitFaulty(btx.Inner(), client.FaultStallLate); !ok {
		t.Fatal("stall-late behavior did not run")
	}

	// The correct client reads x, sees the prepared write (f+1 replicas
	// vouch for it), acquires the dependency, and must eventually commit
	// by finishing the stalled transaction.
	c := cl.NewClient()
	done := make(chan error, 1)
	go func() {
		done <- c.Run(func(tx *basil.Txn) error {
			vv, err := tx.Read("x")
			if err != nil {
				return err
			}
			tx.Write("x", enc(dec(vv)+1))
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dependent transaction failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dependent transaction stalled forever")
	}

	// The stalled transaction must have reached a decision; the final
	// value reflects either its commit (+100) then +1, or its abort then
	// +1 over the original.
	tx := c.Begin()
	final, err := tx.Read("x")
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	tx.Abort()
	got := dec(final)
	if got != 111 && got != 11 {
		t.Fatalf("final x = %d, want 111 (dep committed) or 11 (dep aborted)", got)
	}
	if c.Stats().DepsAcquired.Load() == 0 {
		t.Fatal("correct client never acquired the dependency")
	}
}

// TestEquivocationResolvedByFallback: a Byzantine client logs conflicting
// ST2 decisions (the paper's Figure 3 scenario); an interested client
// drives the divergent-case fallback and obtains one consistent decision.
func TestEquivocationResolvedByFallback(t *testing.T) {
	cl := basil.NewCluster(basil.Options{
		F: 1, Shards: 1, PhaseTimeout: 40 * time.Millisecond,
		AllowUnvalidatedST2: true,
	})
	defer cl.Close()
	cl.Load("x", enc(5))

	byz := cl.NewClient()
	btx := byz.Begin()
	v, _ := btx.Read("x")
	btx.Write("x", enc(dec(v)+50))
	if ok := byz.Inner().CommitFaulty(btx.Inner(), client.FaultEquivForced); !ok {
		t.Fatal("forced equivocation did not run")
	}
	meta := btx.Inner().MetaSnapshot()

	// An interested correct client finishes the equivocated transaction.
	c := cl.NewClient()
	dec1, cert1, err := c.Inner().FinishTransaction(meta)
	if err != nil {
		t.Fatalf("fallback did not terminate: %v", err)
	}
	if cert1 == nil {
		t.Fatal("no certificate produced")
	}
	// A second recoverer must reach the same decision (durability).
	c2 := cl.NewClient()
	dec2, _, err := c2.Inner().FinishTransaction(meta)
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	if dec1 != dec2 {
		t.Fatalf("fallback produced divergent decisions: %v vs %v", dec1, dec2)
	}
	if c.Stats().FallbackRounds.Load() == 0 && c2.Stats().FallbackRounds.Load() == 0 {
		t.Log("note: fallback resolved on the common-case path (no election needed)")
	}
}

// TestRecoveryOfCleanlyCommittedTx: finishing an already-committed
// transaction returns its commit certificate (RP fast-forward).
func TestRecoveryOfCommittedTxReturnsCert(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(1))
	c := cl.NewClient()
	tx := c.Begin()
	v, _ := tx.Read("x")
	tx.Write("x", enc(dec(v)+1))
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	meta := tx.Meta()
	time.Sleep(5 * time.Millisecond) // let writebacks land

	c2 := cl.NewClient()
	decision, cert, err := c2.Inner().FinishTransaction(meta)
	if err != nil {
		t.Fatalf("recovery of committed tx: %v", err)
	}
	if cert == nil || decision.String() != "commit" {
		t.Fatalf("expected commit cert, got %v", decision)
	}
}

// TestDeltaBoundRejectsFutureTimestamps: a client whose clock runs far
// ahead of the replicas is refused (paper §4.1), then succeeds once its
// timestamps fall inside δ.
func TestDeltaBoundRejectsFutureTimestamps(t *testing.T) {
	base := clock.NewManual(1_000_000)
	net := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		Clock:        base,
		DeltaMicros:  1000,
		PhaseTimeout: 30 * time.Millisecond,
		RetryTimeout: 200 * time.Millisecond,
	})
	defer net.Close()
	net.Load("x", enc(1))

	// All nodes share `base`; a skewed view for the client is modeled by
	// bumping the clock between Begin and the replicas' checks — instead
	// we simply verify the in-δ case works and the far-future case (via
	// a skewed client cluster) is refused.
	c := net.NewClient()
	tx := c.Begin()
	if _, err := tx.Read("x"); err != nil {
		t.Fatalf("in-δ read failed: %v", err)
	}
	tx.Abort()

	skewed := basil.NewCluster(basil.Options{
		F: 1, Shards: 1,
		Clock:        base, // replicas use base...
		DeltaMicros:  1000,
		PhaseTimeout: 30 * time.Millisecond,
		RetryTimeout: 200 * time.Millisecond,
	})
	defer skewed.Close()
	skewed.Load("x", enc(1))
	// ...but this client begins transactions at base + 10s.
	cSkew := skewed.NewClientWithClock(clock.Skewed{Base: base, Offset: 10_000_000})
	tx2 := cSkew.Begin()
	if _, err := tx2.Read("x"); !errors.Is(err, basil.ErrTimeout) {
		t.Fatalf("far-future read should time out (replicas ignore it), got %v", err)
	}
	tx2.Abort()
}

// TestGCPreservesReads: garbage collection below a watermark keeps the
// newest committed version readable.
func TestGCPreservesReads(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1})
	defer cl.Close()
	cl.Load("x", enc(0))
	c := cl.NewClient()
	for i := uint64(1); i <= 10; i++ {
		tx := c.Begin()
		tx.Write("x", enc(i))
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	// GC aggressively on every replica.
	now := clock.Real{}.NowMicros()
	for i := 0; i < cl.ReplicaCount(); i++ {
		cl.Replica(0, i).Store().GC(timestampAt(now))
	}
	tx := c.Begin()
	v, err := tx.Read("x")
	if err != nil {
		t.Fatalf("read after GC: %v", err)
	}
	tx.Abort()
	if dec(v) != 10 {
		t.Fatalf("GC lost the newest version: %d", dec(v))
	}
}

// TestReadWaitVariants exercises the Fig. 5b read-quorum configurations.
func TestReadWaitVariants(t *testing.T) {
	for _, wait := range []int{1, 2, 3} {
		cl := basil.NewCluster(basil.Options{F: 1, Shards: 1, ReadWait: wait})
		cl.Load("x", enc(9))
		c := cl.NewClient()
		tx := c.Begin()
		v, err := tx.Read("x")
		if err != nil || dec(v) != 9 {
			t.Fatalf("ReadWait=%d: %v %v", wait, v, err)
		}
		tx.Write("x", enc(10))
		if err := tx.Commit(); err != nil {
			t.Fatalf("ReadWait=%d commit: %v", wait, err)
		}
		cl.Close()
	}
}

// TestNoSignaturesMode exercises the Basil-NoProofs ablation end to end.
func TestNoSignaturesMode(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1, NoSignatures: true})
	defer cl.Close()
	cl.Load("x", enc(3))
	c := cl.NewClient()
	err := c.Run(func(tx *basil.Txn) error {
		v, err := tx.Read("x")
		if err != nil {
			return err
		}
		tx.Write("x", enc(dec(v)+1))
		return nil
	})
	if err != nil {
		t.Fatalf("NoProofs transaction failed: %v", err)
	}
}

// TestDisableFastPathUsesST2 verifies the NoFP ablation takes the slow
// path exclusively.
func TestDisableFastPathUsesST2(t *testing.T) {
	cl := basil.NewCluster(basil.Options{F: 1, Shards: 1, DisableFastPath: true})
	defer cl.Close()
	cl.Load("x", enc(0))
	c := cl.NewClient()
	for i := 0; i < 3; i++ {
		tx := c.Begin()
		tx.Write("x", enc(uint64(i)))
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
	}
	st := c.Stats()
	if st.FastPathTaken.Load() != 0 || st.SlowPathTaken.Load() == 0 {
		t.Fatalf("NoFP config still used the fast path: fast=%d slow=%d",
			st.FastPathTaken.Load(), st.SlowPathTaken.Load())
	}
}
