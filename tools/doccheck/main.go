// Command doccheck fails (exit 1) when any Go package under the given
// roots lacks a package-level doc comment. A package's role and its
// locking/ownership rules belong in a doc comment where godoc and the
// next builder can find them — `make doc-check` keeps that from rotting
// as packages are added.
//
// Usage: doccheck ROOT [ROOT...]  (e.g. doccheck ./internal ./basil)
//
// A package is documented when at least one of its non-test .go files
// carries a doc comment on its package clause. Test-only packages
// (_test.go files only) are skipped.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck ROOT [ROOT...]")
		os.Exit(2)
	}
	// dir -> whether any non-test file documents the package.
	documented := make(map[string]bool)
	hasGo := make(map[string]bool)
	fset := token.NewFileSet()
	for _, root := range os.Args[1:] {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			hasGo[dir] = true
			f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				documented[dir] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}
	var missing []string
	for dir := range hasGo {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	for _, dir := range missing {
		fmt.Printf("doccheck: package in %s has no package doc comment\n", dir)
	}
	if len(missing) > 0 {
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages documented\n", len(hasGo))
}
