// Command doccheck fails (exit 1) when documentation conventions the
// codebase relies on are missing. `make doc-check` keeps them from
// rotting as code is added. Three rules:
//
//  1. Every Go package under the given roots carries a package-level doc
//     comment (role plus locking/ownership rules) on at least one
//     non-test file.
//  2. Every mutex field (sync.Mutex / sync.RWMutex, possibly pointer or
//     embedded) of an exported struct type carries a doc comment saying
//     what the lock guards — the lock hierarchy lives in godoc, and
//     basilvet's lock-discipline pass (BV001) keys off these fields.
//  3. Every *Locked function or method carries a doc comment that names
//     the lock it assumes held (the text must mention "lock", "hold",
//     or "mu") — the *Locked suffix is the other convention basilvet
//     seeds its call-graph walk from.
//
// Usage: doccheck ROOT [ROOT...]  (e.g. doccheck ./internal ./basil)
//
// Test-only packages (_test.go files only) and testdata trees (analyzer
// fixtures, not real code) are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

var lockWords = regexp.MustCompile(`(?i)\block(s|ed|ing)?\b|\bhold(s|ing)?\b|\bheld\b|\bmu\b`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck ROOT [ROOT...]")
		os.Exit(2)
	}
	// dir -> whether any non-test file documents the package.
	documented := make(map[string]bool)
	hasGo := make(map[string]bool)
	var problems []string
	fset := token.NewFileSet()
	for _, root := range os.Args[1:] {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			hasGo[dir] = true
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				documented[dir] = true
			}
			problems = append(problems, checkFile(fset, f)...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
	}
	var missing []string
	for dir := range hasGo {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	for _, dir := range missing {
		fmt.Printf("doccheck: package in %s has no package doc comment\n", dir)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Printf("doccheck: %s\n", p)
	}
	if len(missing)+len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages documented\n", len(hasGo))
}

// checkFile applies the mutex-field and *Locked-method rules to one file.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	at := func(n ast.Node) string {
		p := fset.Position(n.Pos())
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if !isMutexType(field.Type) {
						continue
					}
					if fieldDocText(field) != "" {
						continue
					}
					problems = append(problems, fmt.Sprintf(
						"%s: mutex field %s needs a doc comment stating what it guards (lock hierarchy lives in godoc)",
						at(field), fieldLabel(ts.Name.Name, field)))
				}
			}
		case *ast.FuncDecl:
			if !strings.HasSuffix(d.Name.Name, "Locked") || d.Name.Name == "Locked" {
				continue
			}
			doc := ""
			if d.Doc != nil {
				doc = d.Doc.Text()
			}
			if lockWords.MatchString(doc) {
				continue
			}
			problems = append(problems, fmt.Sprintf(
				"%s: %s needs a doc comment naming the lock it assumes held (*Locked convention)",
				at(d), d.Name.Name))
		}
	}
	return problems
}

// isMutexType matches sync.Mutex and sync.RWMutex, optionally behind a
// pointer (syntactic match: doccheck stays a parser-only tool).
func isMutexType(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// fieldDocText returns the field's doc or trailing line comment text.
func fieldDocText(field *ast.Field) string {
	var text string
	if field.Doc != nil {
		text += field.Doc.Text()
	}
	if field.Comment != nil {
		text += field.Comment.Text()
	}
	return strings.TrimSpace(text)
}

// fieldLabel names a field for a report: Type.name, or Type.sync.Mutex
// for embedded mutexes.
func fieldLabel(typeName string, field *ast.Field) string {
	if len(field.Names) > 0 {
		var names []string
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
		return typeName + "." + strings.Join(names, ",")
	}
	return typeName + ".(embedded mutex)"
}
