package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Finding is one reported invariant violation.
type Finding struct {
	Code string `json:"code"` // BV000..BV008
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// nolintInfo records one //nolint:basilvet comment.
type nolintInfo struct {
	line      int
	justified bool
	pos       token.Position
}

// suppressions collects the nolint comments of one package, keyed by file
// path then line. A suppression on line N covers findings on N and N+1
// (comment-above style), mirroring the convention of other linters.
type suppressions map[string]map[int]nolintInfo

const nolintMarker = "nolint:basilvet"

// collectSuppressions scans comments for nolint markers. The justification
// is whatever free text follows the marker (after an optional dash); it is
// mandatory, and its absence is itself a finding (BV000) — an unexplained
// suppression is indistinguishable from a silenced bug.
func collectSuppressions(pkg *Package) (suppressions, []Finding) {
	sup := make(suppressions)
	var findings []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, nolintMarker)
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len(nolintMarker):]
				rest = strings.TrimLeft(rest, " \t—:-–")
				pos := pkg.Fset.Position(c.Pos())
				info := nolintInfo{line: pos.Line, justified: strings.TrimSpace(rest) != "", pos: pos}
				file := relPath(pos.Filename)
				if sup[file] == nil {
					sup[file] = make(map[int]nolintInfo)
				}
				sup[file][pos.Line] = info
				if !info.justified {
					findings = append(findings, Finding{
						Code: "BV000", File: file, Line: pos.Line, Col: pos.Column,
						Msg: "nolint:basilvet without a justification — add the reason after the marker (bare nolint suppresses nothing)",
					})
				}
			}
		}
	}
	return sup, findings
}

// suppressed reports whether a finding at pos is covered by a justified
// nolint on the same line or the line above.
func (s suppressions) suppressed(file string, line int) bool {
	m := s[file]
	if m == nil {
		return false
	}
	if info, ok := m[line]; ok && info.justified {
		return true
	}
	if info, ok := m[line-1]; ok && info.justified {
		return true
	}
	return false
}

// relPath trims the working directory off absolute positions so output is
// stable across machines (and matches what fixtures expect).
func relPath(p string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if rel, rerr := filepath.Rel(wd, p); rerr == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return p
}

// pass is one analysis over a type-checked package.
type pass func(*Package) []Finding

var passes = []pass{
	lockDiscipline,       // BV001
	logBeforeExternal,    // BV002
	errorHygiene,         // BV003
	goroutineHygiene,     // BV004
	metricsTax,           // BV005
	metricDefinitionSite, // BV006
	unboundedIntake,      // BV007
	adminHandlerLocks,    // BV008
}

// analyze runs every pass on pkg and filters results through its
// suppressions.
func analyze(pkg *Package) []Finding {
	sup, findings := collectSuppressions(pkg)
	for _, p := range passes {
		for _, f := range p(pkg) {
			if sup.suppressed(f.File, f.Line) {
				continue
			}
			findings = append(findings, f)
		}
	}
	return findings
}

// finding builds a Finding at an AST node.
func finding(pkg *Package, code string, at ast.Node, format string, args ...any) Finding {
	pos := pkg.Fset.Position(at.Pos())
	return Finding{
		Code: code, File: relPath(pos.Filename), Line: pos.Line, Col: pos.Column,
		Msg: fmt.Sprintf(format, args...),
	}
}

// --- shared helpers used by several passes ---

// funcName returns a readable name for a FuncDecl (with receiver type).
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
			continue
		case *ast.IndexExpr:
			t = x.X
			continue
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// typePkgAndName resolves an expression's type to (package name, type
// name), dereferencing pointers. Identity is by name rather than
// types.Object because the module importer may check a dependency under
// more than one path in fixture runs.
func typePkgAndName(pkg *Package, e ast.Expr) (string, string) {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return "", ""
	}
	return namedOf(tv.Type)
}

func namedOf(t types.Type) (string, string) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Name(), obj.Name()
}

// calleePkgName returns the defining package name of the function being
// called (empty for builtins and locals without a package).
func calleePkgName(pkg *Package, call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fn]; ok {
			if f := sel.Obj(); f != nil && f.Pkg() != nil {
				return f.Pkg().Name()
			}
			return ""
		}
		// Package-qualified call: pkgident.Func(...)
		if id, ok := fn.X.(*ast.Ident); ok {
			if obj, ok := pkg.Info.Uses[id]; ok {
				if pn, ok := obj.(*types.PkgName); ok {
					return pn.Imported().Name()
				}
			}
		}
		if obj, ok := pkg.Info.Uses[fn.Sel]; ok && obj.Pkg() != nil {
			return obj.Pkg().Name()
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fn]; ok && obj.Pkg() != nil {
			return obj.Pkg().Name()
		}
	}
	return ""
}

// calleeName returns the bare name of the called function/method.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return ""
}
