package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package plus everything the passes need.
type Package struct {
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// loader type-checks packages with go/types. The stock "source" importer
// resolves stdlib imports but not module-local ones, so moduleImporter
// below maps the module path prefix (from go.mod) to repo directories and
// recursively type-checks those itself, memoized.
type loader struct {
	fset       *token.FileSet
	modPath    string // e.g. "repro"
	modRoot    string // absolute dir containing go.mod
	fallback   types.Importer
	cache      map[string]*types.Package // import path -> checked package
	loading    map[string]bool           // import-cycle guard
	typeSink   map[string]*Package       // dir -> full load result
	checkerErr error
}

func newLoader() (*loader, error) {
	// The analyzer never needs cgo-backed packages resolved through C;
	// without this, type-checking anything that imports net fails.
	build.Default.CgoEnabled = false
	root, modPath, err := findModule()
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		modPath:  modPath,
		modRoot:  root,
		fallback: importer.ForCompiler(fset, "source", nil),
		cache:    make(map[string]*types.Package),
		loading:  make(map[string]bool),
		typeSink: make(map[string]*Package),
	}, nil
}

// findModule walks up from the working directory to go.mod.
func findModule() (dir, modPath string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

// Import satisfies types.Importer: module-local paths are resolved against
// the repo, everything else goes to the source importer (stdlib).
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		return l.checkDir(filepath.Join(l.modRoot, rel), path)
	}
	return l.fallback.Import(path)
}

// checkDir parses and type-checks the package in dir, memoized by import
// path so shared dependencies are checked once per run.
func (l *loader) checkDir(dir, importPath string) (*types.Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.cache[importPath] = pkg
	l.typeSink[dir] = &Package{Dir: dir, Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	return pkg, nil
}

// load returns the analyzed Package for a directory, or nil if the
// directory holds no non-test Go files.
func (l *loader) load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	files, err := parseDir(l.fset, abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	importPath := l.importPathFor(abs)
	if _, err := l.checkDir(abs, importPath); err != nil {
		return nil, err
	}
	return l.typeSink[abs], nil
}

// importPathFor maps a repo directory to its module import path; dirs
// outside the module (fixtures under a temp dir) get a synthetic path.
func (l *loader) importPathFor(abs string) string {
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "basilvet.test/" + filepath.Base(abs)
	}
	if rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// parseDir parses every non-test .go file in dir (not recursive) that
// matches the default build context: //go:build constraints and filename
// suffixes are honored, so of a race_on.go/race_off.go tag pair only the
// !race side is loaded (the analyzer runs uninstrumented) and the pair's
// shared const does not look redeclared.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, merr := build.Default.MatchFile(dir, n); merr != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// expandPatterns turns CLI args (dir or dir/...) into a sorted list of
// package directories. Recursive walks skip testdata and hidden dirs.
func expandPatterns(args []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		root, recursive := strings.CutSuffix(arg, "/...")
		root = filepath.Clean(root)
		if !recursive {
			if st, err := os.Stat(root); err != nil || !st.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", arg)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
