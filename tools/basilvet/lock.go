package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// BV001 lock-discipline.
//
// The rule (replica package doc, PR 3): no blocking or externalizing call
// may run while a tracked mutex is held — signing, channel sends, network
// sends, fsync, WAL appends, sleeps. The pass walks each function's
// statements maintaining the set of held locks: x.Lock()/RLock() adds x,
// x.Unlock()/RUnlock() removes it, `defer x.Unlock()` holds x to the end
// of the function. Functions named *Locked are seeded with a pseudo-lock
// (the convention promises a caller-held mutex). Blocking calls include
// transitive ones: each function in the package gets a memoized summary
// of the shallowest blocking call reachable from it, and calling a
// blocking-summary function under a lock is reported at the call site
// with the chain in the message.
//
// Deliberate approximations (documented in the command doc): function
// literals and `go` statements defer execution and are not walked at
// their creation site; sync.Cond.Wait releases its mutex and is not
// blocking for this rule; a branch that unlocks and does not return makes
// the fall-through state conservatively unlocked (avoiding false
// positives at the cost of missing relock-in-branch bugs).

// blockingCalls maps callee name -> the reason it must not run under a
// lock. Matching is by method/function name plus, where needed, the
// receiver or package checked in isBlockingCall.
var blockingCalls = map[string]string{
	"Send":       "network send",
	"SendAll":    "network broadcast",
	"Append":     "WAL append (group commit waits on fsync)",
	"Checkpoint": "checkpoint write+fsync",
	"Sync":       "file fsync",
	"Sign":       "signature computation",
	"Enqueue":    "batch-signer enqueue (may run flush inline)",
	"Go":         "verifier-pool dispatch",
	"All":        "verifier-pool barrier",
	"Sleep":      "sleep",
	"Wait":       "blocking wait",
}

// lockState tracks held locks by a stable string key ("recv.field" or
// variable name).
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockState) names() string {
	var ks []string
	for k := range s {
		ks = append(ks, k)
	}
	// Small sets; insertion order is map order, sort for stable messages.
	for i := 0; i < len(ks); i++ {
		for j := i + 1; j < len(ks); j++ {
			if ks[j] < ks[i] {
				ks[i], ks[j] = ks[j], ks[i]
			}
		}
	}
	return strings.Join(ks, ", ")
}

// blockSite is the summary of the shallowest blocking call reachable from
// a function when it is entered with no locks of its own.
type blockSite struct {
	node   ast.Node // the direct blocking call expression
	reason string
	chain  []string // call chain from the summarized function to the site
}

type lockPass struct {
	pkg       *Package
	decls     map[string]*ast.FuncDecl // funcName -> decl (package-local)
	summaries map[string]*blockSite    // funcName -> memoized summary (nil = doesn't block)
	summWIP   map[string]bool          // recursion guard
	findings  []Finding
	reported  map[string]bool // dedup by file:line
}

func lockDiscipline(pkg *Package) []Finding {
	p := &lockPass{
		pkg:       pkg,
		decls:     make(map[string]*ast.FuncDecl),
		summaries: make(map[string]*blockSite),
		summWIP:   make(map[string]bool),
		reported:  make(map[string]bool),
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				p.decls[funcName(fd)] = fd
			}
		}
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(lockState)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				held["<caller's lock: "+funcName(fd)+">"] = true
			}
			p.walkBlock(fd.Body, held, funcName(fd))
		}
	}
	return p.findings
}

// report records a BV001 at the direct blocking site.
func (p *lockPass) report(at ast.Node, held lockState, reason string, chain []string) {
	pos := p.pkg.Fset.Position(at.Pos())
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	if p.reported[key] {
		return
	}
	p.reported[key] = true
	via := ""
	if len(chain) > 1 {
		via = " (via " + strings.Join(chain, " -> ") + ")"
	}
	p.findings = append(p.findings, finding(p.pkg, "BV001", at,
		"%s while holding %s%s — release the lock first or defer the work",
		reason, held.names(), via))
}

// walkBlock walks stmts in order, mutating held. Returns true if the block
// always terminates (return/panic on every path it saw).
func (p *lockPass) walkBlock(b *ast.BlockStmt, held lockState, fn string) bool {
	if b == nil {
		return false
	}
	return p.walkStmts(b.List, held, fn)
}

func (p *lockPass) walkStmts(stmts []ast.Stmt, held lockState, fn string) bool {
	for _, s := range stmts {
		if p.walkStmt(s, held, fn) {
			return true // terminated; the rest is dead on this path
		}
	}
	return false
}

// walkStmt processes one statement; returns true when the statement
// terminates the enclosing function on every path.
func (p *lockPass) walkStmt(s ast.Stmt, held lockState, fn string) bool {
	switch st := s.(type) {
	case *ast.ExprStmt:
		p.walkExpr(st.X, held, fn)
	case *ast.SendStmt:
		if len(held) > 0 {
			p.report(st, held, "channel send", nil)
		}
		p.walkExpr(st.Value, held, fn)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			p.walkExpr(e, held, fn)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						p.walkExpr(v, held, fn)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// defer x.Unlock() means x is held until the function ends, so it
		// stays in the held set; a deferred Lock would be bizarre and is
		// ignored. Other deferred calls run at exit, outside this walk.
		if key, op, ok := lockOp(p.pkg, st.Call); ok && op == "unlock" {
			// Keep held[key]; nothing to do — the lock persists.
			_ = key
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			p.walkExpr(e, held, fn)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end the linear walk of this block.
		return false
	case *ast.IfStmt:
		if st.Init != nil {
			p.walkStmt(st.Init, held, fn)
		}
		p.walkExpr(st.Cond, held, fn)
		thenHeld := held.clone()
		thenTerm := p.walkBlock(st.Body, thenHeld, fn)
		elseHeld := held.clone()
		elseTerm := false
		if st.Else != nil {
			elseTerm = p.walkStmt(st.Else, elseHeld, fn)
		}
		// Merge: fall-through holds a lock only if every non-terminating
		// branch still holds it (conservative toward fewer false positives).
		merge(held, thenHeld, thenTerm, elseHeld, elseTerm, st.Else != nil)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return p.walkBlock(st, held, fn)
	case *ast.ForStmt:
		if st.Init != nil {
			p.walkStmt(st.Init, held, fn)
		}
		if st.Cond != nil {
			p.walkExpr(st.Cond, held, fn)
		}
		body := held.clone()
		p.walkBlock(st.Body, body, fn)
		intersect(held, body)
	case *ast.RangeStmt:
		p.walkExpr(st.X, held, fn)
		body := held.clone()
		p.walkBlock(st.Body, body, fn)
		intersect(held, body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			p.walkStmt(st.Init, held, fn)
		}
		if st.Tag != nil {
			p.walkExpr(st.Tag, held, fn)
		}
		p.walkCases(st.Body, held, fn)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			p.walkStmt(st.Init, held, fn)
		}
		p.walkCases(st.Body, held, fn)
	case *ast.SelectStmt:
		// A select with only non-blocking-intent cases still blocks unless
		// it has a default; report the wait itself when under a lock.
		if len(held) > 0 && !selectHasDefault(st) {
			p.report(st, held, "blocking select", nil)
		}
		p.walkCases(st.Body, held, fn)
	case *ast.GoStmt:
		// The launched goroutine does not run under the launcher's locks.
	case *ast.LabeledStmt:
		return p.walkStmt(st.Stmt, held, fn)
	}
	return false
}

// walkCases walks each case clause against a clone and intersects results.
func (p *lockPass) walkCases(body *ast.BlockStmt, held lockState, fn string) {
	if body == nil {
		return
	}
	snapshot := held.clone()
	first := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				if send, ok := cc.Comm.(*ast.SendStmt); ok && len(snapshot) > 0 {
					p.report(send, snapshot, "channel send", nil)
				}
			}
			stmts = cc.Body
		}
		caseHeld := snapshot.clone()
		term := p.walkStmts(stmts, caseHeld, fn)
		if term {
			continue
		}
		if first {
			for k := range held {
				delete(held, k)
			}
			for k := range caseHeld {
				held[k] = true
			}
			first = false
		} else {
			intersect(held, caseHeld)
		}
	}
}

// merge computes the post-if held set in place.
func merge(held, thenHeld lockState, thenTerm bool, elseHeld lockState, elseTerm, hasElse bool) {
	if !hasElse {
		elseHeld = held.clone() // implicit empty else keeps the pre-state
		elseTerm = false
	}
	for k := range held {
		delete(held, k)
	}
	switch {
	case thenTerm && elseTerm:
		// Unreachable fall-through; leave empty.
	case thenTerm:
		for k := range elseHeld {
			held[k] = true
		}
	case elseTerm:
		for k := range thenHeld {
			held[k] = true
		}
	default:
		for k := range thenHeld {
			if elseHeld[k] {
				held[k] = true
			}
		}
	}
}

func intersect(dst, other lockState) {
	for k := range dst {
		if !other[k] {
			delete(dst, k)
		}
	}
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkExpr visits expressions for calls (the only lock-relevant events).
// Function literals are skipped: they execute later, not here.
func (p *lockPass) walkExpr(e ast.Expr, held lockState, fn string) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		p.handleCall(x, held, fn)
	case *ast.ParenExpr:
		p.walkExpr(x.X, held, fn)
	case *ast.BinaryExpr:
		p.walkExpr(x.X, held, fn)
		p.walkExpr(x.Y, held, fn)
	case *ast.UnaryExpr:
		p.walkExpr(x.X, held, fn)
	case *ast.SelectorExpr:
		p.walkExpr(x.X, held, fn)
	case *ast.IndexExpr:
		p.walkExpr(x.X, held, fn)
		p.walkExpr(x.Index, held, fn)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			p.walkExpr(el, held, fn)
		}
	case *ast.KeyValueExpr:
		p.walkExpr(x.Value, held, fn)
	case *ast.TypeAssertExpr:
		p.walkExpr(x.X, held, fn)
	case *ast.StarExpr:
		p.walkExpr(x.X, held, fn)
	case *ast.FuncLit:
		// Deferred execution: the literal's body runs when invoked (reply
		// closures run on the batcher goroutine), not at creation.
	}
}

// handleCall is the core transition: lock ops mutate held, blocking calls
// report, package-local calls consult summaries for transitive blocking.
func (p *lockPass) handleCall(call *ast.CallExpr, held lockState, fn string) {
	for _, a := range call.Args {
		p.walkExpr(a, held, fn)
	}
	if key, op, ok := lockOp(p.pkg, call); ok {
		switch op {
		case "lock":
			held[key] = true
		case "unlock":
			delete(held, key)
		}
		return
	}
	if reason, ok := p.isBlockingCall(call); ok {
		if len(held) > 0 {
			p.report(call, held, reason, nil)
		}
		return
	}
	// Transitive: package-local callee with a blocking summary.
	if len(held) == 0 {
		return
	}
	name, local := p.localCallee(call)
	if !local {
		return
	}
	if site := p.summarize(name); site != nil {
		chain := append([]string{fn}, site.chain...)
		p.report(call, held, site.reason, chain)
	}
}

// lockOp recognizes x.Lock/RLock/Unlock/RUnlock on sync mutexes (or
// embedded/aliased ones). Cond.Wait is handled in isBlockingCall (it
// releases the mutex, so it is exempt by design).
func lockOp(pkg *Package, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var opKind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		opKind = "lock"
	case "Unlock", "RUnlock":
		opKind = "unlock"
	default:
		return "", "", false
	}
	// The receiver must be (or embed) a sync mutex type.
	pkgName, typeName := typePkgAndName(pkg, sel.X)
	if pkgName != "sync" || (typeName != "Mutex" && typeName != "RWMutex") {
		// Allow promoted methods: selection through an embedded mutex still
		// resolves the method's receiver to sync.(RW)Mutex.
		if s, okSel := pkg.Info.Selections[sel]; okSel {
			if fnObj, okFn := s.Obj().(*types.Func); okFn {
				if sig, okSig := fnObj.Type().(*types.Signature); okSig && sig.Recv() != nil {
					rp, rt := namedOf(sig.Recv().Type())
					if rp == "sync" && (rt == "Mutex" || rt == "RWMutex") {
						return exprKey(sel.X), opKind, true
					}
				}
			}
		}
		return "", "", false
	}
	return exprKey(sel.X), opKind, true
}

// exprKey renders the mutex expression as a stable string ("r.mu",
// "ts.mu", "s.stripes[i].mu" collapses to source text shape).
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	case *ast.UnaryExpr:
		return exprKey(x.X)
	default:
		return "<expr>"
	}
}

// isBlockingCall classifies direct blocking/externalizing calls.
func (p *lockPass) isBlockingCall(call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	reason, listed := blockingCalls[name]
	if !listed {
		return "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	switch name {
	case "Sleep":
		return reason, p.calleeFromPkg(call, "time")
	case "Wait":
		// sync.WaitGroup.Wait blocks; sync.Cond.Wait releases the mutex
		// (the WAL group-commit pattern) and is exempt.
		if !isSel {
			return "", false
		}
		pn, tn := typePkgAndName(p.pkg, sel.X)
		if pn == "sync" && tn == "WaitGroup" {
			return "WaitGroup.Wait", true
		}
		return "", false
	case "Sync":
		// (*os.File).Sync and the exported wal sync paths.
		if !isSel {
			return "", false
		}
		pn, tn := typePkgAndName(p.pkg, sel.X)
		return reason, pn == "os" && tn == "File"
	case "Send", "SendAll":
		// Transport interface or any network-shaped receiver; require a
		// method call (not a local function named Send).
		if !isSel {
			return "", false
		}
		pn, _ := receiverPkg(p.pkg, sel)
		return reason, pn == "transport"
	case "Append":
		if !isSel {
			return "", false
		}
		pn, _ := receiverPkg(p.pkg, sel)
		return reason, pn == "wal"
	case "Checkpoint":
		if !isSel {
			return "", false
		}
		pn, _ := receiverPkg(p.pkg, sel)
		return reason, pn == "wal" || pn == "replica"
	case "Sign", "Enqueue", "Go", "All":
		if !isSel {
			return "", false
		}
		pn, _ := receiverPkg(p.pkg, sel)
		return reason, pn == "cryptoutil"
	}
	return "", false
}

// receiverPkg returns the defining package name of a method's receiver
// type (works for interface methods too).
func receiverPkg(pkg *Package, sel *ast.SelectorExpr) (string, string) {
	if s, ok := pkg.Info.Selections[sel]; ok {
		if fnObj, ok := s.Obj().(*types.Func); ok && fnObj.Pkg() != nil {
			return fnObj.Pkg().Name(), fnObj.Name()
		}
	}
	return "", ""
}

// calleeFromPkg reports whether the call is pkgname.Func(...).
func (p *lockPass) calleeFromPkg(call *ast.CallExpr, want string) bool {
	return calleePkgName(p.pkg, call) == want
}

// localCallee resolves a call to a package-local FuncDecl name.
func (p *lockPass) localCallee(call *ast.CallExpr) (string, bool) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := p.decls[fn.Name]; ok {
			return fn.Name, true
		}
	case *ast.SelectorExpr:
		// Method call on a local type: resolve via receiver type name.
		if s, ok := p.pkg.Info.Selections[fn]; ok {
			if m, ok := s.Obj().(*types.Func); ok && m.Pkg() == p.pkg.Pkg {
				if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
					_, tn := namedOf(sig.Recv().Type())
					name := tn + "." + m.Name()
					if _, ok := p.decls[name]; ok {
						return name, true
					}
				}
			}
		}
	}
	return "", false
}

// summarize computes (memoized) whether calling name with no locks held
// reaches a blocking call, returning the shallowest such site.
func (p *lockPass) summarize(name string) *blockSite {
	if site, done := p.summaries[name]; done {
		return site
	}
	if p.summWIP[name] {
		return nil // recursion: assume non-blocking on the back edge
	}
	p.summWIP[name] = true
	defer delete(p.summWIP, name)
	fd := p.decls[name]
	if fd == nil {
		p.summaries[name] = nil
		return nil
	}
	s := &summarizer{p: p, fn: name}
	ast.Inspect(fd.Body, s.visit)
	p.summaries[name] = s.site
	return s.site
}

// summarizer scans a function body for the first blocking call, ignoring
// lock state inside the callee: BV001's premise is that the *caller*
// holds a lock across the whole call, so any blocking site inside is a
// violation regardless of the callee's own locking. FuncLits and go
// statements are skipped as everywhere else. Sites whose line carries a
// justified nolint are not treated as blocking for callers either — the
// annotation vouches for the whole pattern.
type summarizer struct {
	p    *lockPass
	fn   string
	site *blockSite
}

func (s *summarizer) visit(n ast.Node) bool {
	if s.site != nil {
		return false
	}
	switch x := n.(type) {
	case *ast.FuncLit, *ast.GoStmt:
		return false
	case *ast.SendStmt:
		s.record(x, "channel send", nil)
		return false
	case *ast.CallExpr:
		if _, _, isLock := lockOp(s.p.pkg, x); isLock {
			return true
		}
		if reason, ok := s.p.isBlockingCall(x); ok {
			s.record(x, reason, nil)
			return false
		}
		if callee, local := s.p.localCallee(x); local && callee != s.fn {
			if sub := s.p.summarize(callee); sub != nil {
				s.record(sub.node, sub.reason, append([]string{callee}, sub.chain...))
				return false
			}
		}
	}
	return true
}

func (s *summarizer) record(at ast.Node, reason string, chain []string) {
	pos := s.p.pkg.Fset.Position(at.Pos())
	// A justified suppression at the site covers transitive reports too.
	if supOnLine(s.p.pkg, pos.Line, pos.Filename) {
		return
	}
	s.site = &blockSite{node: at, reason: reason, chain: chain}
}

// supOnLine checks for a justified nolint on the site line or the line
// above (same rule as suppressions.suppressed, but usable before the
// suppression map is threaded through the pass).
func supOnLine(pkg *Package, line int, filename string) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				if pos.Filename != filename {
					continue
				}
				if pos.Line != line && pos.Line != line-1 {
					continue
				}
				idx := strings.Index(c.Text, nolintMarker)
				if idx < 0 {
					continue
				}
				rest := strings.TrimLeft(c.Text[idx+len(nolintMarker):], " \t—:-–")
				if strings.TrimSpace(rest) != "" {
					return true
				}
			}
		}
	}
	return false
}
