//go:build !race

// Package tagpair is a basilvet loader fixture: a race_on.go/race_off.go
// style build-tag pair declaring the same const. The loader must honor
// build constraints and parse only the !race side — loading both made the
// const look redeclared and failed the whole analysis of any package that
// uses the raceEnabled pattern outside _test files.
package tagpair

const tagRaceEnabled = false

// Use keeps the const referenced so the fixture stays vet-clean.
func Use() bool { return tagRaceEnabled }
