//go:build race

package tagpair

const tagRaceEnabled = true
