// Package replica is a basilvet fixture for the BV002
// log-before-externalize pass, which keys off the package *name*: promise
// flags may only flip in functions that also append the matching WAL
// record, and no reply may leave before the log call.
package replica

type txState struct {
	voteReady      bool
	decisionLogged bool
	finalized      bool
}

type rep struct{ logged int }

func (r *rep) logVoteLocked(t *txState) bool     { r.logged++; return true }
func (r *rep) logDecisionLocked(t *txState) bool { r.logged++; return true }
func (r *rep) signThen(p []byte, done func())    {}

// --- positives ---

// promiseWithoutLog flips a promise flag with no WAL append anywhere in
// the function.
func (r *rep) promiseWithoutLog(t *txState) {
	t.voteReady = true // want BV002
}

// replyBeforeLog externalizes before the append.
func (r *rep) replyBeforeLog(t *txState) {
	r.signThen(nil, nil) // want BV002
	r.logDecisionLocked(t)
}

// resurrectionPromise is the resurrection-bug shape the lifecycle guards
// against: a handler for a collected transaction rebuilds state and
// marks it finalized with no append — the outcome it promises is not the
// one on disk.
func (r *rep) resurrectionPromise(t *txState) {
	t.finalized = true // want BV002
	r.signThen(nil, nil)
}

// --- negatives ---

// promiseWithLog is the compliant onST1 shape: append, then flip, then
// reply.
func (r *rep) promiseWithLog(t *txState) {
	if !r.logVoteLocked(t) {
		return
	}
	t.voteReady = true
	r.signThen(nil, nil)
}

// decisionWithLog covers the second promise field.
func (r *rep) decisionWithLog(t *txState) {
	if !r.logDecisionLocked(t) {
		return
	}
	t.decisionLogged = true
	r.signThen(nil, nil)
}

// replayRestore is the documented in-memory rebuild branch: the record
// being replayed IS the append, so the suppression carries the reason.
func (r *rep) replayRestore(t *txState) {
	//nolint:basilvet — fixture: replay path rebuilds the flag from the record just read
	t.finalized = true
}

// replyInCallback builds the reply closure before logging; the closure
// runs later on the signer goroutine, so creation order is not send
// order.
func (r *rep) replyInCallback(t *txState) {
	done := func() { r.signThen(nil, nil) }
	if !r.logVoteLocked(t) {
		return
	}
	t.voteReady = true
	done()
}

// collectedDuplicateReply is the store-finalized re-serve path: a late
// duplicate for a collected transaction is answered straight from the
// store's finalized table. The reply externalizes an outcome a *past*
// append already made durable, no promise flag flips here, so no log
// call is required in this function.
func (r *rep) collectedDuplicateReply(t *txState) {
	if t.finalized {
		return
	}
	r.signThen(nil, nil)
}
