// Package client is a basilvet fixture for the BV005 metrics-tax pass,
// which keys off hot-path package *names* (replica, store, wal,
// transport, client): clock reads feeding latency histograms must be
// gated on a live registry or a non-nil handle.
package client

import (
	"time"

	"repro/internal/metrics"
)

type actor struct {
	timed    bool
	reg      *metrics.Registry
	h        *metrics.Histogram
	deadline time.Time
}

// --- positives ---

func (a *actor) directUngated() {
	defer a.h.Since(time.Now()) // want BV005
}

func (a *actor) varUngated() {
	t0 := time.Now() // want BV005
	a.work()
	a.h.Since(t0)
}

// --- negatives ---

func (a *actor) gatedOnTimed() {
	var t0 time.Time
	if a.timed {
		t0 = time.Now()
	}
	a.work()
	if a.timed {
		a.h.Since(t0)
	}
}

func (a *actor) gatedOnHandle() {
	if a.h != nil {
		defer a.h.Since(time.Now())
	}
	a.work()
}

func (a *actor) gatedOnEnabled() {
	if a.reg.Enabled() {
		defer a.h.Since(time.Now())
	}
	a.work()
}

// clockForProtocol: time.Now() not feeding a histogram (deadlines, cache
// stamps, backoff) is protocol time, not instrumentation — never flagged.
func (a *actor) clockForProtocol() bool {
	a.deadline = time.Now().Add(time.Second)
	return time.Now().Before(a.deadline)
}

func (a *actor) work() {}
