// Package queuecases is a basilvet fixture for the BV007 unbounded-intake
// pass: intake-path functions (deliver/dispatch/enqueue/push/admit/intake)
// growing a struct-held slice or map must show a capacity check in the
// same function.
package queuecases

type envelope struct {
	from string
	msg  any
}

type node struct {
	queue    []envelope
	pending  map[uint64]any
	capacity int
	inbox    []envelope
}

// --- positives ---

func (n *node) Deliver(from string, msg any) {
	n.queue = append(n.queue, envelope{from, msg}) // want BV007
}

func (n *node) enqueuePending(id uint64, msg any) {
	n.pending[id] = msg // want BV007
}

func (n *node) pushBoth(e envelope, id uint64) {
	n.inbox = append(n.inbox, e) // want BV007
	n.pending[id] = e.msg        // want BV007
}

// --- negatives ---

// pushCapped checks against an explicit cap — the mailbox.push shape.
func (n *node) pushCapped(e envelope) bool {
	if len(n.queue) >= n.capacity {
		return false
	}
	n.queue = append(n.queue, e)
	return true
}

// enqueueSized flushes at a size threshold — the BatchSigner.Enqueue
// shape (bound evidence by identifier name, no len comparison needed).
func (n *node) enqueueSized(e envelope, size int) {
	n.inbox = append(n.inbox, e)
	if size > 0 {
		n.inbox = nil
	}
}

// admitJustified is unbounded here by design; the justification names
// the bounding layer.
func (n *node) admitJustified(id uint64, msg any) {
	n.pending[id] = msg //nolint:basilvet — bounded upstream by the transport's MaxInflight cap
}

// route grows nothing struct-held: locals are free.
func (n *node) routeDispatch(msgs []any) {
	var local []any
	for _, m := range msgs {
		local = append(local, m)
	}
	_ = local
}

// handle is not an intake-path name; growth here is out of scope.
func (n *node) handle(e envelope) {
	n.queue = append(n.queue, e)
}
