// Package chaoscases is a basilvet fixture for BV004 goroutine hygiene
// in scenario-harness shapes: a chaos runner that owns a cluster (and
// therefore has Close) must launch its storm-schedule, dispatcher and
// spammer goroutines joinably — wg-tracked or bound to a stop signal —
// or a scenario that ends mid-storm leaks goroutines into the next one.
package chaoscases

import (
	"sync"
	"time"
)

type chaosRunner struct {
	wg   sync.WaitGroup
	stop chan struct{}
	nArm int
}

// Close makes chaosRunner a closer type: its goroutines are in scope.
func (r *chaosRunner) Close() {
	close(r.stop)
	r.wg.Wait()
}

// --- positives ---

// startScheduleLeaky fires chaos events on a timer loop with no stop
// binding and no WaitGroup: Close cannot join or drain it, and the
// schedule keeps arming faults into the next scenario's cluster.
func (r *chaosRunner) startScheduleLeaky() {
	go func() { // want BV004
		for {
			time.Sleep(time.Millisecond)
			r.nArm++
		}
	}()
}

// startSpammerLeaky launches an unbounded spam loop by method value.
func (r *chaosRunner) startSpammerLeaky() {
	go r.spam() // want BV004
}

func (r *chaosRunner) spam() {
	for i := 0; i < 1_000_000; i++ {
		r.nArm++
	}
}

// --- negatives ---

// startScheduleTracked is the harness's real shape: wg.Add before the
// go statement, so Close joins the schedule before the verdict runs.
func (r *chaosRunner) startScheduleTracked() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.nArm++
	}()
}

// startScheduleStopBound selects on the stop channel every iteration.
func (r *chaosRunner) startScheduleStopBound() {
	go func() {
		for {
			select {
			case <-r.stop:
				return
			case <-time.After(time.Millisecond):
				r.nArm++
			}
		}
	}()
}
