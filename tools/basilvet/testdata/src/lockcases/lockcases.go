// Package lockcases is a basilvet fixture: positive and negative cases
// for the BV001 lock-discipline pass. Lines carrying a `// want BVxxx`
// marker must be reported; everything else must stay silent.
package lockcases

import (
	"sync"
	"time"

	"repro/internal/cryptoutil"
	"repro/internal/transport"
	"repro/internal/wal"
)

type svc struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	net  transport.Network
	addr transport.Addr
	log  *wal.Log
	sg   cryptoutil.Signer
	ch   chan int
	n    int
}

// --- positives ---

func (s *svc) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want BV001
	s.mu.Unlock()
}

func (s *svc) sendUnderLock(m any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.net.Send(s.addr, s.addr, m) // want BV001
}

func (s *svc) chanSendUnderRLock() {
	s.rw.RLock()
	s.ch <- 1 // want BV001
	s.rw.RUnlock()
}

func (s *svc) appendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.log.Append(nil); err != nil { // want BV001
		return
	}
}

func (s *svc) signUnderLock() {
	s.mu.Lock()
	sig := s.sg.Sign(nil) // want BV001
	_ = sig
	s.mu.Unlock()
}

func (s *svc) waitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want BV001
	s.mu.Unlock()
}

// blocksTransitively is clean on its own (no lock held here)...
func (s *svc) blocksTransitively() {
	time.Sleep(time.Microsecond)
}

// ...but calling it under a lock is a transitive violation.
func (s *svc) callsBlockerUnderLock() {
	s.mu.Lock()
	s.blocksTransitively() // want BV001
	s.mu.Unlock()
}

// flushLocked is seeded with a pseudo-lock by the *Locked convention.
func (s *svc) flushLocked() {
	s.net.SendAll(s.addr, nil, nil) // want BV001
}

// --- negatives ---

func (s *svc) sleepAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// condWaitIsExempt: sync.Cond.Wait releases the mutex while parked — the
// WAL group-commit pattern — so it is not a blocking call for this rule.
func (s *svc) condWaitIsExempt() {
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// goStmtDoesNotBlockLauncher: the launched goroutine runs without the
// launcher's locks.
func (s *svc) goStmtDoesNotBlockLauncher() {
	s.mu.Lock()
	go func() { time.Sleep(time.Millisecond) }()
	s.mu.Unlock()
}

// funcLitRunsLater: building a closure under a lock is fine; it executes
// on another goroutine (e.g. a batch-signer callback).
func (s *svc) funcLitRunsLater() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { s.net.Send(s.addr, s.addr, nil) }
}

// branchUnlockMerge mirrors the onST1 shape: a branch that unlocks and
// returns does not leave the fall-through path unlocked, and a branch
// that unlocks without returning conservatively clears the held set.
func (s *svc) branchUnlockMerge(early bool) {
	s.mu.Lock()
	if early {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// justified suppression: the site is annotated with a reason, so neither
// the direct report nor transitive reports through it fire.
func (s *svc) annotatedBarrier() {
	s.mu.Lock()
	time.Sleep(time.Microsecond) //nolint:basilvet — fixture: deliberate barrier with a documented reason
	s.mu.Unlock()
}

func (s *svc) callsAnnotatedBarrierUnderLock() {
	s.mu.Lock()
	s.annotatedBarrier()
	s.mu.Unlock()
}
