// Package gocases is a basilvet fixture for the BV004 goroutine-hygiene
// pass: goroutines launched by a type with a Close method must be
// WaitGroup-tracked or bound to a stop/closed signal.
package gocases

import "sync"

type server struct {
	wg     sync.WaitGroup
	stopCh chan struct{}
	n      int
}

// Close makes server a closer type, putting its goroutines in scope.
func (s *server) Close() {
	close(s.stopCh)
	s.wg.Wait()
}

// --- positives ---

func (s *server) startUntracked() {
	go s.spin() // want BV004
}

func (s *server) startUntrackedLit() {
	go func() { // want BV004
		s.n++
	}()
}

// spin has no stop signal and is not wg-tracked at its launch site.
func (s *server) spin() {
	for i := 0; i < 1000; i++ {
		s.n++
	}
}

// --- negatives ---

func (s *server) startTracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.n++
	}()
}

func (s *server) startDrainable() {
	go func() {
		<-s.stopCh
	}()
}

func (s *server) startSignalMethod() {
	go s.loopUntilStop()
}

func (s *server) loopUntilStop() {
	for {
		select {
		case <-s.stopCh:
			return
		default:
			s.n++
		}
	}
}

// notACloser has no Close method, so its goroutines are out of scope.
type notACloser struct{ n int }

func (c *notACloser) start() {
	go func() { c.n++ }()
}
