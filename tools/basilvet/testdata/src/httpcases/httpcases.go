// Package httpcases holds positive and negative fixture cases for the
// BV008 admin-handler isolation pass: an HTTP handler must not acquire
// Replica.mu — it snapshots through an accessor and serves the copy.
package httpcases

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Replica stands in for the protocol-state owner whose mutex guards the
// hot path.
type Replica struct {
	mu   sync.RWMutex
	seen int
}

// Snapshot is the approved accessor shape: the lock lives with the state
// owner, copies briefly, and returns before any serving happens.
func (r *Replica) Snapshot() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seen
}

// debugHandler is the direct violation: a handler method holding the
// protocol mutex across the response write.
func (r *Replica) debugHandler(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock() // want BV008
	defer r.mu.Unlock()
	fmt.Fprintf(w, "%d", r.seen)
}

// StatsHandler shows the inline-literal shape constructors return; the
// read lock is still protocol-lock pressure from the admin plane.
func StatsHandler(r *Replica) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r.mu.RLock() // want BV008
		n := r.seen
		r.mu.RUnlock()
		fmt.Fprintf(w, "%d", n)
	})
}

// goodHandler is snapshot-then-serve: the accessor locks internally, the
// handler marshals the copy lock-free. Not a finding.
func (r *Replica) goodHandler(w http.ResponseWriter, req *http.Request) {
	if err := json.NewEncoder(w).Encode(r.Snapshot()); err != nil {
		return
	}
}

// handlerCache is a handler-owned mutex, not protocol state; locking it
// while serving is the handler's own business. Not a finding.
type handlerCache struct {
	mu   sync.Mutex
	last []byte
}

func (c *handlerCache) cachedHandler(w http.ResponseWriter, req *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := w.Write(c.last); err != nil {
		return
	}
}

// renderLocked is not handler-shaped (no ResponseWriter/Request params),
// so its Replica.mu use is BV001/BV002 territory, not BV008.
func renderLocked(r *Replica) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.seen
}
