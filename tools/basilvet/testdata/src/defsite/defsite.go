// Package defsite is a basilvet fixture for the BV006 metric-names pass:
// registrations must live in a *metrics* function or a metrics*.go file.
package defsite

import "repro/internal/metrics"

type comp struct {
	reg  *metrics.Registry
	hits *metrics.Counter
	lat  *metrics.Histogram
}

// --- positives ---

func (c *comp) setup() {
	c.hits = c.reg.Counter("fixture_hits_total") // want BV006
}

func newComp(reg *metrics.Registry) *comp {
	c := &comp{reg: reg}
	c.lat = reg.Histogram("fixture_latency_seconds") // want BV006
	return c
}

// --- negatives ---

// initMetrics is a definition site by function name.
func (c *comp) initMetrics() {
	c.hits = c.reg.Counter("fixture_hits_total")
	c.lat = c.reg.Histogram("fixture_latency_seconds")
}

// snapshot uses handles without registering anything.
func (c *comp) snapshot() {
	c.hits.Inc()
}
