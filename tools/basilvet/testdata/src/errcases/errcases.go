// Package errcases is a basilvet fixture for the BV003 error-hygiene pass
// (discarded wal/store/transport/os errors) and the BV000 bare-nolint
// rule.
package errcases

import (
	"os"

	"repro/internal/wal"
)

type box struct {
	log *wal.Log
}

// --- positives ---

func (b *box) discardedRemove(p string) {
	os.Remove(p) // want BV003
}

func (b *box) blankedAppend(rec []byte) {
	_ = b.log.Append(rec) // want BV003
}

// bareNolint: an unjustified suppression is itself a finding and
// suppresses nothing — both codes fire on the line above.
func (b *box) bareNolint(p string) {
	os.Remove(p) //nolint:basilvet
	// want-prev BV000 BV003
}

func (b *box) discardedInClosure(run func(func()), p string) {
	run(func() {
		os.Remove(p) // want BV003
	})
}

// --- negatives ---

func (b *box) handledRemove(p string) error {
	return os.Remove(p)
}

func (b *box) checkedAppend(rec []byte) {
	if err := b.log.Append(rec); err != nil {
		panic(err)
	}
}

// fileCloseExempt: (*os.File).Close on error paths is idiomatic and
// carries no data.
func (b *box) fileCloseExempt(f *os.File) {
	f.Close()
}

func (b *box) justifiedDiscard(p string) {
	//nolint:basilvet — fixture: best-effort cleanup, failure costs disk not correctness
	os.Remove(p)
}
