package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestFixtures runs every pass over the packages under testdata/src and
// compares findings against the in-source expectations:
//
//	stmt()            // want BV001 BV003   — findings expected on this line
//	// want-prev BV000 BV003                — findings expected on the line
//	                                          above (used where that line
//	                                          already carries a nolint
//	                                          comment, which would swallow
//	                                          a same-line marker as its
//	                                          justification text)
//
// The comparison is an exact multiset match on (file, line, code) in both
// directions, so a pass that over-fires on a negative case fails the test
// just like one that misses a positive.
func TestFixtures(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no fixture packages under testdata/src")
	}
	loader, err := newLoader()
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			pkg, err := loader.load(dir)
			if err != nil {
				t.Fatalf("load %s: %v", dir, err)
			}
			if pkg == nil {
				t.Fatalf("no Go files in %s", dir)
			}
			want, err := wantMarkers(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[string]int)
			for _, f := range analyze(pkg) {
				got[fmt.Sprintf("%s:%d: %s", filepath.Base(f.File), f.Line, f.Code)]++
			}
			for key, n := range want {
				if got[key] < n {
					t.Errorf("missing finding: %s (want %d, got %d)", key, n, got[key])
				}
			}
			for key, n := range got {
				if want[key] < n {
					t.Errorf("unexpected finding: %s (want %d, got %d)", key, want[key], n)
				}
			}
		})
	}
}

var wantRE = regexp.MustCompile(`//\s*want(-prev)?((?:\s+BV\d{3})+)\s*$`)

// wantMarkers parses `// want ...` and `// want-prev ...` expectations
// from every fixture file in dir, keyed like the analyzer output:
// "file.go:LINE: CODE".
func wantMarkers(dir string) (map[string]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	want := make(map[string]int)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			at := i + 1 // 1-based line of the marker
			if m[1] == "-prev" {
				at--
			}
			for _, code := range strings.Fields(m[2]) {
				want[fmt.Sprintf("%s:%d: %s", e.Name(), at, code)]++
			}
		}
	}
	return want, nil
}

// TestExpandPatterns pins the CLI surface: /... walks recursively but
// skips testdata, and a plain dir is taken as-is.
func TestExpandPatterns(t *testing.T) {
	dirs, err := expandPatterns([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "." {
		t.Fatalf("plain dir: got %v", dirs)
	}
	dirs, err = expandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Fatalf("recursive walk descended into testdata: %v", dirs)
		}
	}
}
