package main

import (
	"go/ast"
)

// --- BV008 admin-handler isolation ---------------------------------------
//
// The observability plane must never contend with the protocol path: an
// admin/debug HTTP handler that acquires Replica.mu turns every curl of
// /stats or /traces into protocol-lock pressure — and a slow scrape into
// a latency spike the tracer itself would then report. The discipline is
// snapshot-then-serve: the lock lives with the state owner, behind an
// accessor that copies under the mutex and returns; the handler marshals
// the copy lock-free (metrics.Registry snapshots, trace.Tracer.Spans,
// FlightRecorder.Snapshot are the house shapes).
//
// The pass finds handler-shaped functions — a FuncDecl or FuncLit whose
// parameters are exactly (http.ResponseWriter, *http.Request), the shape
// http.HandlerFunc and mux registrations demand — and flags any
// Lock/RLock in the handler body whose mutex hangs off a value of a type
// named Replica. Accessor methods that lock internally are deliberately
// not followed: calling a snapshot accessor from a handler is the
// approved pattern, so only locks the handler itself takes are findings.

func adminHandlerLocks(pkg *Package) []Finding {
	var findings []Finding
	checkBody := func(name string, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			_, op, isLock := lockOp(pkg, call)
			if !isLock || op != "lock" {
				return true
			}
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr) // lockOp matched, so this holds
			if ownerIsReplica(pkg, sel.X) {
				findings = append(findings, finding(pkg, "BV008", call,
					"HTTP handler %s acquires Replica.mu — admin endpoints must snapshot through a Replica accessor and serve the copy, never hold protocol locks", name))
			}
			return true
		})
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isHandlerSig(pkg, fd.Type) {
				checkBody(funcName(fd), fd.Body)
				continue
			}
			// Handlers built inline: http.HandlerFunc(func(w, r) {...})
			// returned from a constructor or registered on a mux.
			name := funcName(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok && isHandlerSig(pkg, fl.Type) {
					checkBody(name, fl.Body)
					return false
				}
				return true
			})
		}
	}
	return findings
}

// ownerIsReplica reports whether the mutex expression (the receiver of a
// Lock call) hangs off a value whose type is named Replica — r.mu, or a
// promoted r.Lock() through an embedded mutex. Every selector prefix is
// checked so r.inner.mu-style nesting is caught too.
func ownerIsReplica(pkg *Package, mux ast.Expr) bool {
	for {
		e := ast.Unparen(mux)
		if _, tn := typePkgAndName(pkg, e); tn == "Replica" {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			mux = x.X
		case *ast.IndexExpr:
			mux = x.X
		case *ast.StarExpr:
			mux = x.X
		default:
			return false
		}
	}
}

// isHandlerSig matches the http.HandlerFunc parameter shape:
// (http.ResponseWriter, *http.Request), no more, no fewer.
func isHandlerSig(pkg *Package, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var flat []ast.Expr
	for _, fld := range ft.Params.List {
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flat = append(flat, fld.Type)
		}
	}
	if len(flat) != 2 {
		return false
	}
	p0, t0 := typeExprNamed(pkg, flat[0])
	p1, t1 := typeExprNamed(pkg, flat[1])
	return p0 == "http" && t0 == "ResponseWriter" && p1 == "http" && t1 == "Request"
}

// typeExprNamed resolves a parameter type expression to its named type
// (pointers dereferenced), using the checker's record of the expression.
func typeExprNamed(pkg *Package, e ast.Expr) (string, string) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return "", ""
	}
	return namedOf(tv.Type)
}
