// Command basilvet is the project-invariant static analyzer: it machine-
// checks the semantic conventions the system's correctness rests on but
// that `go vet` and the race detector cannot see. Like tools/doccheck and
// tools/linkcheck it is stdlib-only (go/parser + go/types with a
// module-aware source importer) and runs from `make check` as
// `invariant-check`.
//
// Passes and finding codes (each documented in ARCHITECTURE.md §
// "Machine-checked invariants"):
//
//	BV001 lock-discipline      — a blocking or externalizing call
//	       (transport Send/SendAll, wal Append/Checkpoint/Close,
//	       cryptoutil signing and pool dispatch, file Sync, channel
//	       sends, time.Sleep, WaitGroup.Wait) is reachable while a
//	       mutex is held, found by an intra-package call-graph walk
//	       seeded from mu.Lock()/Unlock pairs and the *Locked naming
//	       convention.
//	BV002 log-before-externalize — in package replica, promise state
//	       (voteReady, decisionLogged, finalized) may only be set true
//	       in a function that also appends the matching WAL record, and
//	       no reply may be sent before the log call in that function.
//	BV003 error-hygiene        — an error returned by a wal, store,
//	       transport, or os call is discarded without justification.
//	BV004 goroutine-hygiene    — a goroutine launched from a type that
//	       has a Close method is neither WaitGroup-tracked nor bound to
//	       a stop/closed signal, so Close cannot join or drain it.
//	BV005 metrics-tax          — a clock read (time.Now) that exists
//	       only to feed a latency histogram is not gated on a live
//	       registry, so disabled instrumentation still pays for it
//	       (the rule the -0.8%/<2% overhead bound depends on).
//	BV006 metric-names         — a metric is registered outside the
//	       package's single definition site (a *Metrics* function or a
//	       metrics*.go file), where duplicate-name panics and
//	       divergence from the measured overhead hide.
//	BV007 unbounded-intake     — a function on the receive path (name
//	       contains deliver/dispatch/enqueue/push/admit/intake) grows a
//	       struct-held slice or map with no visible capacity check
//	       (cap-ish identifier or len(...) comparison) in the same
//	       function — a queue an untrusted peer can pump until OOM.
//	BV008 admin-handler isolation — an HTTP handler (the
//	       http.HandlerFunc parameter shape, declared or inline)
//	       acquires Replica.mu; admin/debug endpoints must snapshot
//	       through a Replica accessor and serve the copy, never hold
//	       protocol locks while serving.
//
// Suppression: a finding line (or the line above it) may carry
// `//nolint:basilvet — <justification>`. The justification is mandatory;
// a bare nolint is itself reported (BV000) and suppresses nothing.
//
// Scope notes, by design: function literals are not treated as executing
// at their creation site (reply closures run on the batcher), `go`
// statements do not block their launcher, and sync.Cond.Wait releases
// the mutex it guards — none of these seed BV001. Dataflow for BV005 is
// per-function. These approximations are documented here so a clean run
// is read as "the checked discipline holds", not "no bug exists".
//
// Usage:
//
//	basilvet [-json] PKGDIR...   (a trailing /... walks recursively)
//
// Exit status 1 when findings remain, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (scriptable output)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: basilvet [-json] PKGDIR... (dir or dir/...)")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	dirs, err := expandPatterns(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "basilvet: %v\n", err)
		os.Exit(2)
	}
	loader, err := newLoader()
	if err != nil {
		fmt.Fprintf(os.Stderr, "basilvet: %v\n", err)
		os.Exit(2)
	}
	var findings []Finding
	for _, dir := range dirs {
		pkg, err := loader.load(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "basilvet: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if pkg == nil {
			continue // no non-test Go files
		}
		findings = append(findings, analyze(pkg)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Code < b.Code
	})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "basilvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Code, f.Msg)
		}
		if len(findings) == 0 {
			fmt.Printf("basilvet: %d packages clean\n", len(dirs))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
