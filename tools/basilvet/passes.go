package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// --- BV002 log-before-externalize ---------------------------------------
//
// Basil's replica discipline: fail-stop, never fail-equivocate. A replica
// may crash after promising a vote/decision, but it must never come back
// and contradict itself — so every promise flag flip and every reply that
// externalizes a promise must be preceded by the matching WAL append in
// the same handler. The pass applies to packages *named* replica and
// checks two things per function: (a) any assignment setting a promise
// field (voteReady, decisionLogged, finalized) to true must share its
// function with a log call; (b) when a function both logs and
// externalizes, the first log call must precede the first externalizing
// call in source order.

var promiseFields = map[string]bool{
	"voteReady":      true,
	"decisionLogged": true,
	"finalized":      true,
}

var logCalls = map[string]bool{
	"logVoteLocked":     true,
	"logDecisionLocked": true,
	"logFinal":          true,
	"Append":            true, // direct wal append
}

var externalizeCalls = map[string]bool{
	"signThen":       true,
	"Send":           true,
	"SendAll":        true,
	"broadcastShard": true,
}

func logBeforeExternal(pkg *Package) []Finding {
	if pkg.Pkg.Name() != "replica" {
		return nil
	}
	var findings []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var promiseAt ast.Node
			var firstLog, firstExt token.Pos
			var extNode ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					return false // runs later (batcher callback), not on this path
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						sel, ok := lhs.(*ast.SelectorExpr)
						if !ok || !promiseFields[sel.Sel.Name] {
							continue
						}
						if i < len(x.Rhs) && isTrue(x.Rhs[i]) && promiseAt == nil {
							promiseAt = x
						}
					}
				case *ast.CallExpr:
					name := calleeName(x)
					if logCalls[name] {
						if name != "Append" || calleeReceiverPkg(pkg, x) == "wal" {
							if firstLog == token.NoPos || x.Pos() < firstLog {
								firstLog = x.Pos()
							}
						}
					}
					if externalizeCalls[name] {
						if name == "Send" || name == "SendAll" {
							if calleeReceiverPkg(pkg, x) != "transport" {
								return true
							}
						}
						if firstExt == token.NoPos || x.Pos() < firstExt {
							firstExt = x.Pos()
							extNode = x
						}
					}
				}
				return true
			})
			if promiseAt != nil && firstLog == token.NoPos {
				findings = append(findings, finding(pkg, "BV002", promiseAt,
					"%s sets a promise flag without a WAL append in the same function — a crash here could let the replica equivocate on restart", funcName(fd)))
			}
			if firstExt != token.NoPos && firstLog != token.NoPos && firstExt < firstLog {
				findings = append(findings, finding(pkg, "BV002", extNode,
					"%s externalizes a reply before its WAL append — log first, then send", funcName(fd)))
			}
		}
	}
	return findings
}

func isTrue(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "true"
}

func calleeReceiverPkg(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pn, _ := receiverPkg(pkg, sel)
	return pn
}

// --- BV003 error-hygiene -------------------------------------------------
//
// Durability and transport errors are the ones this system exists to
// handle; discarding one silently turns fail-stop into fail-oblivious.
// The pass flags calls whose error result is dropped — as a bare
// expression statement or assigned entirely to blanks — when the callee
// is defined in wal, store, transport, or os. (*os.File).Close is exempt:
// close-on-error-path discards are idiomatic and carry no data.

var errCalleePkgs = map[string]bool{
	"wal": true, "store": true, "transport": true, "os": true,
}

func errorHygiene(pkg *Package) []Finding {
	var findings []Finding
	check := func(call *ast.CallExpr) {
		pn := calleePkgName(pkg, call)
		if !errCalleePkgs[pn] {
			return
		}
		name := calleeName(call)
		if pn == "os" && name == "Close" {
			return
		}
		if !returnsError(pkg, call) {
			return
		}
		findings = append(findings, finding(pkg, "BV003", call,
			"error from %s.%s discarded — handle it or add //nolint:basilvet with the reason it is safe to drop", pn, name))
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					check(call)
				}
				return true // keep descending: closures passed as args get checked too
			case *ast.AssignStmt:
				if len(x.Rhs) == 1 && allBlank(x.Lhs) {
					if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
						check(call)
					}
					return true
				}
			case *ast.GoStmt, *ast.DeferStmt:
				// go/defer of an error-returning call is a different smell;
				// deferred Close/Sync discards are covered by convention in
				// review, not this pass.
				return false
			}
			return true
		})
	}
	return findings
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(lhs) > 0
}

// returnsError reports whether the call's type includes an error result.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// --- BV004 goroutine-hygiene ---------------------------------------------
//
// A struct with a Close method promises an orderly shutdown; a goroutine
// it launches must be joinable (wg.Add before the go statement) or
// drainable (the goroutine body references a stop/closed/done signal).
// Otherwise Close returns while the goroutine still runs — the flaky-test
// and leaked-fd generator. The pass looks at go statements inside methods
// of types that also declare Close.

func goroutineHygiene(pkg *Package) []Finding {
	// Types with a Close method.
	closers := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Close" {
				continue
			}
			closers[recvTypeName(fd)] = true
		}
	}
	if len(closers) == 0 {
		return nil
	}
	var findings []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !closers[recvTypeName(fd)] {
				continue
			}
			findings = append(findings, checkGoStmts(pkg, fd)...)
		}
	}
	return findings
}

func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// checkGoStmts flags go statements not preceded (anywhere in the method)
// by a WaitGroup Add and whose body/target shows no shutdown signal.
func checkGoStmts(pkg *Package, fd *ast.FuncDecl) []Finding {
	var findings []Finding
	hasWGAdd := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				if pn, tn := typePkgAndName(pkg, sel.X); pn == "sync" && tn == "WaitGroup" {
					hasWGAdd = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if hasWGAdd || goHasStopSignal(pkg, fd, g) {
			return true
		}
		findings = append(findings, finding(pkg, "BV004", g,
			"%s launches a goroutine with no WaitGroup.Add and no stop/closed signal — Close cannot join or drain it", funcName(fd)))
		return true
	})
	return findings
}

// goHasStopSignal inspects the goroutine target (literal body, or the
// package-local function it calls) for references to a shutdown signal:
// an identifier matching stop|close|closed|done|quit|ctx, or a receive
// from a channel.
func goHasStopSignal(pkg *Package, fd *ast.FuncDecl, g *ast.GoStmt) bool {
	var body ast.Node
	switch fn := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fn.Body
	case *ast.SelectorExpr:
		// Method call: find the local decl by bare method name.
		body = localMethodBody(pkg, fn.Sel.Name)
	case *ast.Ident:
		body = localMethodBody(pkg, fn.Name)
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if isStopName(x.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isStopName(x.Sel.Name) {
				found = true
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			// ranging over a channel drains until close
			if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isStopName(name string) bool {
	l := strings.ToLower(name)
	for _, sig := range []string{"stop", "close", "done", "quit", "ctx", "shutdown"} {
		if strings.Contains(l, sig) {
			return true
		}
	}
	return false
}

// localMethodBody finds any package-local function/method body by bare
// name (methods are rarely ambiguous within one package's goroutines;
// when they are, any match referencing a signal is accepted).
func localMethodBody(pkg *Package, name string) ast.Node {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name && fd.Body != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// --- BV005 metrics-tax ---------------------------------------------------
//
// PR 5's rule: instrumentation must be free when disabled. A time.Now()
// whose only consumer is a histogram observation must be gated on a live
// registry (or a non-nil handle) so the disabled path never reads the
// clock. The pass applies to hot packages (replica, store, wal,
// transport, client) and flags, per function: (a) `h.Since(time.Now())`
// / `h.Observe(time.Since(t))` argument clock reads, and (b) variables
// assigned from time.Now() and later passed to Since/Observe — in both
// cases only when the read is not inside an if gated on an
// enabled/timed/live condition or a handle nil-check.

var hotPackages = map[string]bool{
	"replica": true, "store": true, "wal": true, "transport": true, "client": true,
}

func metricsTax(pkg *Package) []Finding {
	if !hotPackages[pkg.Pkg.Name()] {
		return nil
	}
	var findings []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			findings = append(findings, checkClockReads(pkg, fd)...)
		}
	}
	return findings
}

func checkClockReads(pkg *Package, fd *ast.FuncDecl) []Finding {
	// First collect: which variables are clock reads, which feed
	// histograms, and which nodes sit under a metrics gate.
	clockVars := make(map[string]ast.Node) // var name -> time.Now() call node
	gated := make(map[ast.Node]bool)       // nodes under a recognized gate
	var gateStack []bool
	inGate := func() bool {
		for _, g := range gateStack {
			if g {
				return true
			}
		}
		return false
	}
	var findings []Finding
	var walk func(n ast.Node)
	seen := make(map[ast.Node]bool)

	// gateCond: an if-condition that mentions a timed/enabled/live field,
	// an Enabled() call, or a != nil comparison — the shapes the codebase
	// uses to guard instrumentation.
	isGate := func(cond ast.Expr) bool {
		found := false
		ast.Inspect(cond, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if isGateName(x.Name) {
					found = true
				}
			case *ast.SelectorExpr:
				if isGateName(x.Sel.Name) {
					found = true
				}
			case *ast.CallExpr:
				if calleeName(x) == "Enabled" {
					found = true
				}
			case *ast.BinaryExpr:
				if x.Op == token.NEQ || x.Op == token.EQL {
					if isNil(x.X) || isNil(x.Y) {
						found = true
					}
				}
			}
			return !found
		})
		return found
	}

	walk = func(n ast.Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		switch x := n.(type) {
		case *ast.IfStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			gateStack = append(gateStack, isGate(x.Cond))
			walkNode(x.Body, walk)
			gateStack = gateStack[:len(gateStack)-1]
			if x.Else != nil {
				walk(x.Else)
			}
			return
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if isTimeNow(pkg, rhs) && i < len(x.Lhs) {
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						clockVars[id.Name] = rhs
						if inGate() {
							gated[rhs] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if isHistogramConsumer(pkg, x) {
				for _, a := range x.Args {
					// h.Since(time.Now()) — direct
					if isTimeNow(pkg, a) && !inGate() {
						findings = append(findings, finding(pkg, "BV005", a,
							"%s reads the clock for a histogram without a live-registry gate — disabled metrics still pay for time.Now()", funcName(fd)))
						continue
					}
					// h.Since(t) / h.Observe(time.Since(t)) — via variable
					names := identNames(a)
					for _, nm := range names {
						if src, ok := clockVars[nm]; ok && !gated[src] {
							findings = append(findings, finding(pkg, "BV005", src,
								"%s reads the clock for a histogram without a live-registry gate — wrap the time.Now() in the metrics-enabled check", funcName(fd)))
							gated[src] = true // report once per read
						}
					}
				}
			}
		}
		walkNode(n, walk)
	}
	walkNode(fd.Body, walk)
	return findings
}

func isGateName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "timed") || strings.Contains(l, "enabled") || strings.Contains(l, "live")
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isTimeNow matches time.Now() (possibly wrapped in time.Since(...)).
func isTimeNow(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if calleePkgName(pkg, call) == "time" {
		switch calleeName(call) {
		case "Now":
			return true
		case "Since":
			return true
		}
	}
	return false
}

// isHistogramConsumer matches h.Since(...)/h.Observe(...) where h is a
// metrics histogram, and Observe(time.Since(t)) chains.
func isHistogramConsumer(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Since" && sel.Sel.Name != "Observe" {
		return false
	}
	pn, tn := typePkgAndName(pkg, sel.X)
	return pn == "metrics" && (tn == "Histogram" || tn == "Counter" || tn == "Gauge")
}

func identNames(e ast.Expr) []string {
	var names []string
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			names = append(names, id.Name)
		}
		return true
	})
	return names
}

// walkNode visits direct children via ast.Inspect one level at a time.
func walkNode(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child == nil {
			return false
		}
		f(child)
		return false
	})
}

// --- BV006 metric-names --------------------------------------------------
//
// Every package keeps its metric names in one definition site — a
// function whose name contains "metrics" or a file named metrics*.go —
// so the name census in docs/operations.md stays auditable and
// duplicate-name panics cannot hide in distant call sites. Registration
// calls (reg.Counter/Gauge/Histogram/BindCounter/BindCounterFunc/
// BindGaugeFunc) elsewhere are flagged. The metrics package itself (the
// implementation) is exempt.

var registerMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"BindCounter": true, "BindCounterFunc": true, "BindGaugeFunc": true,
}

// --- BV007 unbounded-intake ----------------------------------------------
//
// The admission-control rule: every intake path must be bounded. A
// function on the receive path (its name contains deliver, dispatch,
// enqueue, push, admit, or intake) that grows a container hanging off a
// struct — `x.f = append(x.f, ...)` or `x.f[k] = v` — is a queue an
// untrusted peer can pump; without a visible cap it grows until OOM.
// Bounding evidence is any identifier mentioning a cap (cap/max/limit/
// bound/full/size/shed/drop/evict) or a comparison against len(...) in
// the same function: the shapes mailbox.push, BatchSigner.Enqueue and
// TCP.enqueue use. A genuinely unbounded-by-design site needs a
// justified //nolint:basilvet naming who bounds it instead.

var intakeNames = []string{"deliver", "dispatch", "enqueue", "push", "admit", "intake"}

var boundNames = []string{"cap", "max", "limit", "bound", "full", "size", "shed", "drop", "evict"}

func unboundedIntake(pkg *Package) []Finding {
	var findings []Finding
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isIntakeName(fd.Name.Name) {
				continue
			}
			if hasBoundEvidence(fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					switch x := ast.Unparen(lhs).(type) {
					case *ast.IndexExpr:
						// x.f[k] = v — map/slice insert on a field.
						if _, isSel := ast.Unparen(x.X).(*ast.SelectorExpr); isSel {
							findings = append(findings, finding(pkg, "BV007", as,
								"%s inserts into a struct-held map on the intake path with no visible bound — a peer can grow it without limit; cap it or justify with //nolint:basilvet", funcName(fd)))
						}
					case *ast.SelectorExpr:
						// x.f = append(x.f, ...) — slice growth on a field.
						if i < len(as.Rhs) && isAppendToSelector(as.Rhs[i]) {
							findings = append(findings, finding(pkg, "BV007", as,
								"%s appends to a struct-held queue on the intake path with no visible bound — a peer can grow it without limit; cap it or justify with //nolint:basilvet", funcName(fd)))
						}
					}
				}
				return true
			})
		}
	}
	return findings
}

func isIntakeName(name string) bool {
	l := strings.ToLower(name)
	for _, n := range intakeNames {
		if strings.Contains(l, n) {
			return true
		}
	}
	return false
}

func isAppendToSelector(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	_, isSel := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	return isSel
}

// hasBoundEvidence reports whether the body shows any sign of a capacity
// check: a cap-ish identifier, or a comparison involving len(...).
func hasBoundEvidence(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if isBoundName(x.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if isBoundName(x.Sel.Name) {
				found = true
			}
			return true
		case *ast.BinaryExpr:
			switch x.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if isLenCall(x.X) || isLenCall(x.Y) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isBoundName(name string) bool {
	l := strings.ToLower(name)
	for _, n := range boundNames {
		if strings.Contains(l, n) {
			return true
		}
	}
	return false
}

func isLenCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len"
}

func metricDefinitionSite(pkg *Package) []Finding {
	if pkg.Pkg.Name() == "metrics" {
		return nil
	}
	var findings []Finding
	for _, f := range pkg.Files {
		base := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		fileOK := strings.HasPrefix(base, "metrics")
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcOK := strings.Contains(strings.ToLower(fd.Name.Name), "metrics")
			if fileOK || funcOK {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !registerMethods[sel.Sel.Name] {
					return true
				}
				pn, tn := typePkgAndName(pkg, sel.X)
				if pn != "metrics" || tn != "Registry" {
					return true
				}
				findings = append(findings, finding(pkg, "BV006", call,
					"metric registered in %s — move it to the package's metrics definition site (an init*Metrics func or metrics*.go file)", funcName(fd)))
				return true
			})
		}
	}
	return findings
}
