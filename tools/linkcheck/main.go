// Command linkcheck keeps the documentation tree honest: it fails (exit
// 1) when a markdown file references something that no longer exists, so
// ARCHITECTURE.md and docs/ cannot rot silently as the code moves.
//
// Usage: linkcheck FILE.md|DIR [...]  (run from the repo root)
//
// Checked per markdown file:
//
//   - Relative markdown links [text](path) must name an existing file or
//     directory (resolved against the file's own directory, then the
//     repo root). http(s) links are skipped.
//   - Anchor fragments [text](path#anchor) — and intra-file [text](#a) —
//     must match a heading in the target file, using GitHub's slug rules
//     (lowercase, spaces to dashes, punctuation dropped).
//   - Inline code spans that look like repo paths (`internal/store`,
//     `cmd/basil-server/main.go`, optionally with a :line suffix) must
//     exist.
//   - Inline code spans that look like command flags (`-admin-addr`)
//     must be defined by some cmd/* binary (collected by scanning their
//     flag registrations) or belong to the go-tool allowlist (-race,
//     -bench, ...).
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	linkRe    = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	codeRe    = regexp.MustCompile("`([^`]+)`")
	headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)
	flagDefRe = regexp.MustCompile(`flag\.(?:String|Bool|Int|Int64|Uint|Uint64|Float64|Duration)\(\s*"([^"]+)"`)
	// pathish matches repo-relative code spans worth existence-checking.
	pathish = regexp.MustCompile(`^(internal|cmd|docs|examples|basil|tools)(/[A-Za-z0-9_.\-/]*)?(\.[a-z]+)?(:\d+)?$`)
	flagish = regexp.MustCompile(`^-[a-z][a-z0-9-]*$`)
)

// goToolFlags are flags of go test / the benchmarks themselves that docs
// legitimately mention but no cmd/ binary defines.
var goToolFlags = map[string]bool{
	"-race": true, "-bench": true, "-benchtime": true, "-benchmem": true,
	"-run": true, "-count": true, "-v": true, "-cpu": true, "-timeout": true,
	"-parallelbench": true, "-walbench": true, "-tags": true,
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md|DIR [...]")
		os.Exit(2)
	}
	definedFlags, err := collectFlags("cmd")
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkcheck: scanning cmd flags: %v\n", err)
		os.Exit(2)
	}

	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if info.IsDir() {
			_ = filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
				if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
					files = append(files, p)
				}
				return nil
			})
		} else {
			files = append(files, arg)
		}
	}

	problems := 0
	report := func(file, format string, args ...any) {
		fmt.Printf("linkcheck: %s: %s\n", file, fmt.Sprintf(format, args...))
		problems++
	}

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		body := string(data)
		dir := filepath.Dir(file)

		for _, m := range linkRe.FindAllStringSubmatch(body, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = resolve(dir, path)
				if resolved == "" {
					report(file, "broken link %q: no such file", target)
					continue
				}
			}
			if anchor != "" {
				if !strings.HasSuffix(resolved, ".md") {
					continue // anchors into non-markdown are not ours to judge
				}
				if !hasAnchor(resolved, anchor) {
					report(file, "link %q: no heading matches #%s in %s", target, anchor, resolved)
				}
			}
		}

		for _, m := range codeRe.FindAllStringSubmatch(body, -1) {
			span := strings.TrimSpace(m[1])
			if pathish.MatchString(span) {
				p := span
				if i := strings.LastIndex(p, ":"); i > 0 && regexp.MustCompile(`^\d+$`).MatchString(p[i+1:]) {
					p = p[:i]
				}
				if resolve(".", p) == "" && resolve(dir, p) == "" {
					report(file, "code span `%s`: no such path", span)
				}
				continue
			}
			if flagish.MatchString(span) && !goToolFlags[span] && !definedFlags[span] {
				report(file, "code span `%s`: no cmd/* binary defines this flag", span)
			}
		}
	}
	if problems > 0 {
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d files clean\n", len(files))
}

// resolve returns the existing path for p relative to dir (or the repo
// root as a fallback), "" if neither exists.
func resolve(dir, p string) string {
	for _, cand := range []string{filepath.Join(dir, p), p} {
		if _, err := os.Stat(cand); err == nil {
			return cand
		}
	}
	return ""
}

// hasAnchor reports whether md contains a heading whose GitHub slug (or
// raw lowercase text) equals anchor.
func hasAnchor(md, anchor string) bool {
	data, err := os.ReadFile(md)
	if err != nil {
		return false
	}
	anchor = strings.ToLower(anchor)
	for _, h := range headingRe.FindAllStringSubmatch(string(data), -1) {
		if slugify(h[1]) == anchor {
			return true
		}
	}
	return false
}

// slugify applies GitHub's heading-anchor rules: lowercase, drop
// everything but letters/digits/spaces/dashes, spaces become dashes.
func slugify(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	// Strip inline code markers and links before slugging.
	s = strings.NewReplacer("`", "", "[", "", "]", "").Replace(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}

// collectFlags scans cmd/*/main.go (well, every .go file under root) for
// flag registrations and returns the set of "-name" strings they define.
func collectFlags(root string) (map[string]bool, error) {
	flags := make(map[string]bool)
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		for _, m := range flagDefRe.FindAllStringSubmatch(string(data), -1) {
			flags["-"+m[1]] = true
		}
		return nil
	})
	return flags, err
}
